#include "matrixkv/matrixkv.h"

#include <cassert>
#include <chrono>

#include "lsm/db_iterator.h"
#include "lsm/merging_iterator.h"
#include "util/clock.h"
#include "util/coding.h"

namespace mio::matrixkv {

MatrixKV::MatrixKV(const MatrixkvOptions &options, sim::NvmDevice *nvm,
                   sim::StorageMedium *sstable_medium)
    : options_(options), nvm_(nvm), matrix_(nvm, &stats_)
{
    lsm_ = std::make_unique<lsm::LsmTree>(options_.lsm, sstable_medium,
                                          &stats_, "matrixkv");
    mem_ = std::make_shared<lsm::MemTable>(options_.memtable_size,
                                           /*rng_seed=*/0x1234);
    if (options_.enable_wal)
        wal_ = wal_registry_.open("matrixkv-wal-0", nvm_);
    flush_thread_ = std::thread([this] { flushThreadLoop(); });
    column_thread_ = std::thread([this] { columnThreadLoop(); });
}

MatrixKV::~MatrixKV()
{
    shutting_down_.store(true);
    imm_cv_.notify_all();
    flush_thread_.join();
    column_thread_.join();
}

void
MatrixKV::applyWritePressure()
{
    uint64_t live = matrix_.liveBytes();
    if (live > options_.matrix_capacity * 2) {
        // Hard limit: block until column compaction makes room.
        ScopedTimer stall(&stats_.interval_stall_ns);
        while (matrix_.liveBytes() > options_.matrix_capacity &&
               !shutting_down_.load()) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    } else if (live > options_.matrix_capacity) {
        // Near-full: throttle writers (the cumulative stalls that
        // dominate MatrixKV's write time in the paper's Table 1).
        ScopedTimer stall(&stats_.cumulative_stall_ns);
        spinFor(options_.slowdown_ns);
    }
}

Status
MatrixKV::writeEntry(const Slice &key, EntryType type, const Slice &value)
{
    if (key.empty())
        return Status::invalidArgument("empty key");

    std::lock_guard<std::mutex> lock(write_mu_);
    applyWritePressure();

    uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    stats_.user_bytes_written.fetch_add(key.size() + value.size(),
                                        std::memory_order_relaxed);
    if (options_.enable_wal) {
        std::string record;
        putFixed64(&record, seq);
        record.push_back(static_cast<char>(type));
        putLengthPrefixedSlice(&record, key);
        putLengthPrefixedSlice(&record, value);
        wal_->append(Slice(record));
        stats_.wal_bytes_written.fetch_add(record.size() + 8,
                                           std::memory_order_relaxed);
    }
    if (!mem_->add(key, seq, type, value)) {
        rotateMemTable();
        if (!mem_->add(key, seq, type, value))
            return Status::invalidArgument("entry too large");
    }
    return Status::ok();
}

void
MatrixKV::rotateMemTable()
{
    std::unique_lock<std::mutex> il(imm_mu_);
    imms_.push_back(mem_);
    if (imms_.size() > 2) {
        // Flushing (row serialization) cannot keep up.
        ScopedTimer stall(&stats_.interval_stall_ns);
        imm_cv_.notify_all();
        imm_cv_.wait(il, [this] {
            return imms_.size() <= 2 || shutting_down_.load();
        });
    }
    mem_ = std::make_shared<lsm::MemTable>(options_.memtable_size,
                                           next_id_.fetch_add(1) * 5 + 1);
    if (options_.enable_wal) {
        wal_registry_.remove("matrixkv-wal-" + std::to_string(wal_id_));
        wal_id_++;
        wal_ = wal_registry_.open(
            "matrixkv-wal-" + std::to_string(wal_id_), nvm_);
    }
    il.unlock();
    imm_cv_.notify_all();
}

void
MatrixKV::flushThreadLoop()
{
    sim::markSimBackgroundThread();
    for (;;) {
        std::shared_ptr<lsm::MemTable> victim;
        {
            std::unique_lock<std::mutex> il(imm_mu_);
            while (imms_.empty()) {
                if (shutting_down_.load())
                    return;
                imm_cv_.wait_for(il, std::chrono::milliseconds(5));
            }
            victim = imms_.front();
        }
        {
            ScopedTimer flush_timer(&stats_.flush_ns);
            matrix_.addRow(victim.get(), next_id_.fetch_add(1));
        }
        stats_.flush_count.fetch_add(1, std::memory_order_relaxed);
        stats_.flushed_bytes.fetch_add(victim->memoryUsed(),
                                       std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            if (!imms_.empty())
                imms_.pop_front();
        }
        imm_cv_.notify_all();
    }
}

bool
MatrixKV::compactOneColumn()
{
    // One snapshot feeds planning, merging, and cursor advance: rows
    // flushed concurrently are untouched until the next column.
    auto rows = matrix_.rowsSnapshot();  // newest first
    std::string hi_key;
    if (!matrix_.planColumn(rows, options_.column_budget, &hi_key))
        return false;

    std::vector<std::unique_ptr<lsm::KVIterator>> children;
    for (const auto &row : rows)
        children.push_back(std::make_unique<RowRangeIterator>(row,
                                                              hi_key));
    lsm::MergingIterator merged(std::move(children));

    Status s = lsm_->mergeIntoLevel(1, &merged, Slice(""),
                                    Slice(hi_key));
    if (!s.isOk())
        return false;
    matrix_.consumeColumn(Slice(hi_key), rows);
    stats_.compaction_count.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
MatrixKV::columnThreadLoop()
{
    sim::markSimBackgroundThread();
    while (!shutting_down_.load()) {
        // Drain the matrix toward 70% of capacity once it fills.
        bool worked = false;
        if (matrix_.liveBytes() >
            options_.matrix_capacity * 7 / 10) {
            worked = compactOneColumn();
        }
        if (!worked) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
}

Status
MatrixKV::put(const Slice &key, const Slice &value)
{
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    return writeEntry(key, EntryType::kValue, value);
}

Status
MatrixKV::remove(const Slice &key)
{
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    return writeEntry(key, EntryType::kDeletion, Slice());
}

Status
MatrixKV::get(const Slice &key, std::string *value)
{
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    EntryType type;

    std::shared_ptr<lsm::MemTable> mem;
    std::vector<std::shared_ptr<lsm::MemTable>> imms;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        mem = mem_;
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            imms.push_back(*it);
    }
    if (mem && mem->get(key, value, &type)) {
        return type == EntryType::kValue ? Status::ok()
                                         : Status::notFound(key);
    }
    for (const auto &imm : imms) {
        if (imm->get(key, value, &type)) {
            return type == EntryType::kValue ? Status::ok()
                                             : Status::notFound(key);
        }
    }
    if (matrix_.get(key, value, &type, nullptr)) {
        return type == EntryType::kValue ? Status::ok()
                                         : Status::notFound(key);
    }
    if (lsm_->get(key, value, &type, nullptr)) {
        return type == EntryType::kValue ? Status::ok()
                                         : Status::notFound(key);
    }
    return Status::notFound(key);
}

Status
MatrixKV::scan(const Slice &start_key, int count,
               std::vector<std::pair<std::string, std::string>> *out)
{
    // A live scan runs against a view pinned right now.
    Snapshot *snap = getSnapshot();
    Status s = scanAt(snap, start_key, count, out);
    releaseSnapshot(snap);
    return s;
}

Snapshot *
MatrixKV::getSnapshot()
{
    auto *snap = new MkvSnapshot();
    {
        // write_mu_ serializes whole writes (seq allocation through
        // the final MemTable insert), so every sequence below seq_
        // is fully applied when the bound is read here.
        std::lock_guard<std::mutex> wl(write_mu_);
        snap->bound = seq_.load(std::memory_order_relaxed) - 1;
    }
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        if (mem_)
            snap->mems.push_back(mem_);
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            snap->mems.push_back(*it);
    }
    // Rows before the LSM pin: data flows MemTable -> row -> L1, so
    // a column compacted between the two captures shows up in the
    // pinned rows (frozen cursors) AND the pinned files -- a dup the
    // scan collapses -- never in neither.
    snap->rows = matrix_.rowsSnapshot();
    snap->row_cursors.reserve(snap->rows.size());
    for (const auto &row : snap->rows)
        snap->row_cursors.push_back(row->cursor());
    snap->lsm_pin = lsm_->pinVersion();
    {
        std::lock_guard<std::mutex> sl(snap_mu_);
        live_snapshots_.insert(snap);
    }
    stats_.snapshots_live.fetch_add(1, std::memory_order_relaxed);
    return snap;
}

void
MatrixKV::releaseSnapshot(Snapshot *snapshot)
{
    if (snapshot == nullptr)
        return;
    auto *snap = static_cast<MkvSnapshot *>(snapshot);
    {
        std::lock_guard<std::mutex> sl(snap_mu_);
        auto it = live_snapshots_.find(snap);
        assert(it != live_snapshots_.end() &&
               "releaseSnapshot: not a live snapshot of this store");
        if (it == live_snapshots_.end())
            return;  // double release: leak rather than corrupt
        live_snapshots_.erase(it);
    }
    stats_.snapshots_live.fetch_sub(1, std::memory_order_relaxed);
    delete snap;
}

Status
MatrixKV::scanAt(const Snapshot *snapshot, const Slice &start_key,
                 int count,
                 std::vector<std::pair<std::string, std::string>> *out)
{
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    out->clear();
    if (count <= 0)
        return Status::ok();
    if (snapshot == nullptr)
        return scan(start_key, count, out);
    const auto *snap = static_cast<const MkvSnapshot *>(snapshot);

    std::vector<std::unique_ptr<lsm::KVIterator>> children;
    children.reserve(snap->mems.size() + snap->rows.size() + 1);
    for (const auto &mem : snap->mems) {
        children.push_back(
            std::make_unique<lsm::SkipListIterator>(&mem->list()));
    }
    for (size_t i = 0; i < snap->rows.size(); i++) {
        children.push_back(std::make_unique<RowRangeIterator>(
            snap->rows[i], std::string(),
            static_cast<ptrdiff_t>(snap->row_cursors[i])));
    }
    children.push_back(lsm_->newIterator(snap->lsm_pin));

    lsm::DBIterator iter(std::make_unique<lsm::MergingIterator>(
                             std::move(children)),
                         snap->bound);
    for (iter.seek(start_key); iter.valid() &&
                               static_cast<int>(out->size()) < count;
         iter.next()) {
        out->emplace_back(iter.key().toString(),
                          iter.value().toString());
    }
    return iter.status();
}

void
MatrixKV::waitIdle()
{
    {
        std::unique_lock<std::mutex> il(imm_mu_);
        while (!imms_.empty() && !shutting_down_.load())
            imm_cv_.wait_for(il, std::chrono::milliseconds(10));
    }
    // Let the column thread settle below its drain target.
    while (matrix_.liveBytes() >
               options_.matrix_capacity * 7 / 10 &&
           !shutting_down_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    lsm_->waitIdle();
}

} // namespace mio::matrixkv
