/**
 * @file
 * YCSB core workloads A-F (Cooper et al., SoCC'10) as the paper's
 * Sec. 5.2 configures them: zipfian request distribution with 0.99
 * skew (latest-distribution for D), 1 KB / 4 KB values, one million
 * operations over an 80 GB loaded store (sizes scaled by the bench).
 */
#ifndef MIO_YCSB_WORKLOAD_H_
#define MIO_YCSB_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "util/random.h"
#include "util/zipfian.h"

namespace mio::ycsb {

enum class OpType {
    kRead,
    kUpdate,
    kInsert,
    kScan,
    kReadModifyWrite,
};

enum class Distribution {
    kZipfian,
    kLatest,
    kUniform,
};

/** Mix and shape of one workload. */
struct WorkloadSpec {
    std::string name;
    double read_proportion = 0;
    double update_proportion = 0;
    double insert_proportion = 0;
    double scan_proportion = 0;
    double rmw_proportion = 0;
    Distribution distribution = Distribution::kZipfian;
    int max_scan_length = 100;

    static WorkloadSpec workloadA();
    static WorkloadSpec workloadB();
    static WorkloadSpec workloadC();
    static WorkloadSpec workloadD();
    static WorkloadSpec workloadE();
    static WorkloadSpec workloadF();
    /** Lookup by letter 'A'..'F'. */
    static WorkloadSpec byName(char letter);
};

/** Draws operations and keys for a run. */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const WorkloadSpec &spec, uint64_t record_count,
                      uint64_t seed = 42);

    struct Op {
        OpType type;
        uint64_t key_index;  //!< index into the key space
        int scan_length;     //!< for kScan
    };

    Op next();

    /** Key space size including run-phase inserts so far. */
    uint64_t recordCount() const { return record_count_; }

    const WorkloadSpec &spec() const { return spec_; }

  private:
    uint64_t drawKey();

    WorkloadSpec spec_;
    uint64_t record_count_;
    Random rng_;
    ScrambledZipfianGenerator zipf_;
    LatestGenerator latest_;
};

} // namespace mio::ycsb

#endif // MIO_YCSB_WORKLOAD_H_
