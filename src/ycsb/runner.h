/**
 * @file
 * YCSB run engine: load phase plus measured run phase against any
 * KVStore, producing throughput, latency percentiles, and a latency
 * timeline for the paper's Fig. 7/8 and Tables 2/3.
 */
#ifndef MIO_YCSB_RUNNER_H_
#define MIO_YCSB_RUNNER_H_

#include <cstdint>
#include <string>

#include "kv/kv_store.h"
#include "util/histogram.h"
#include "ycsb/workload.h"

namespace mio::ycsb {

struct RunResult {
    std::string workload;
    uint64_t operations = 0;
    double seconds = 0;
    Histogram latency_us;
    LatencyTimeline timeline;

    double kiops() const
    {
        return seconds > 0 ? operations / seconds / 1000.0 : 0;
    }
};

class Runner
{
  public:
    /**
     * @param value_size bytes per value (paper: 1 KB and 4 KB)
     * @param record_timeline capture per-op (time, latency) samples
     */
    Runner(KVStore *store, size_t value_size, uint64_t seed = 42,
           bool record_timeline = false);

    /**
     * Insert keys [0, record_count) with @p threads writer threads.
     * Single-threaded (the default) loads in key order. With more
     * threads against a ShardedKvStore facade whose shard count
     * equals @p threads, each thread feeds exactly the keys that
     * route to "its" shard, so the N per-shard write pipelines (WAL
     * group commit, MemTable, flush) run uncontended; any other
     * combination falls back to a strided partition of the key space.
     * The latency timeline is only recorded single-threaded (per-op
     * interleavings across threads are not one series).
     */
    RunResult load(uint64_t record_count, int threads = 1);

    /**
     * Execute @p op_count operations of @p spec across @p threads
     * client threads (standard YCSB multi-client shape: each thread
     * draws from its own generator over the full key space, so the
     * request distribution is preserved and sharded stores see
     * concurrent per-shard traffic).
     */
    RunResult run(const WorkloadSpec &spec, uint64_t record_count,
                  uint64_t op_count, int threads = 1);

  private:
    std::string valueFor(uint64_t key_index);

    KVStore *store_;
    size_t value_size_;
    uint64_t seed_;
    bool record_timeline_;
    Random value_rng_;
    std::string value_buf_;
};

} // namespace mio::ycsb

#endif // MIO_YCSB_RUNNER_H_
