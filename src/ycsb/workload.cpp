#include "ycsb/workload.h"

#include <cassert>

namespace mio::ycsb {

WorkloadSpec
WorkloadSpec::workloadA()
{
    WorkloadSpec s;
    s.name = "A";
    s.read_proportion = 0.5;
    s.update_proportion = 0.5;
    return s;
}

WorkloadSpec
WorkloadSpec::workloadB()
{
    WorkloadSpec s;
    s.name = "B";
    s.read_proportion = 0.95;
    s.update_proportion = 0.05;
    return s;
}

WorkloadSpec
WorkloadSpec::workloadC()
{
    WorkloadSpec s;
    s.name = "C";
    s.read_proportion = 1.0;
    return s;
}

WorkloadSpec
WorkloadSpec::workloadD()
{
    WorkloadSpec s;
    s.name = "D";
    s.read_proportion = 0.95;
    s.insert_proportion = 0.05;
    s.distribution = Distribution::kLatest;
    return s;
}

WorkloadSpec
WorkloadSpec::workloadE()
{
    WorkloadSpec s;
    s.name = "E";
    s.scan_proportion = 0.95;
    s.insert_proportion = 0.05;
    return s;
}

WorkloadSpec
WorkloadSpec::workloadF()
{
    WorkloadSpec s;
    s.name = "F";
    s.read_proportion = 0.5;
    s.rmw_proportion = 0.5;
    return s;
}

WorkloadSpec
WorkloadSpec::byName(char letter)
{
    switch (letter) {
      case 'A': case 'a': return workloadA();
      case 'B': case 'b': return workloadB();
      case 'C': case 'c': return workloadC();
      case 'D': case 'd': return workloadD();
      case 'E': case 'e': return workloadE();
      case 'F': case 'f': return workloadF();
    }
    assert(false && "unknown YCSB workload");
    return workloadA();
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec,
                                     uint64_t record_count, uint64_t seed)
    : spec_(spec), record_count_(record_count), rng_(seed),
      zipf_(record_count, ZipfianGenerator::kDefaultTheta, seed * 3 + 1),
      latest_(record_count, ZipfianGenerator::kDefaultTheta, seed * 5 + 7)
{}

uint64_t
WorkloadGenerator::drawKey()
{
    switch (spec_.distribution) {
      case Distribution::kZipfian:
        return zipf_.next();
      case Distribution::kLatest:
        return latest_.next();
      case Distribution::kUniform:
        return rng_.uniform(record_count_);
    }
    return 0;
}

WorkloadGenerator::Op
WorkloadGenerator::next()
{
    Op op;
    op.scan_length = 0;
    double p = rng_.nextDouble();
    if (p < spec_.read_proportion) {
        op.type = OpType::kRead;
        op.key_index = drawKey();
    } else if (p < spec_.read_proportion + spec_.update_proportion) {
        op.type = OpType::kUpdate;
        op.key_index = drawKey();
    } else if (p < spec_.read_proportion + spec_.update_proportion +
                       spec_.insert_proportion) {
        op.type = OpType::kInsert;
        op.key_index = record_count_;
        record_count_++;
        zipf_.grow(record_count_);
        latest_.grow(record_count_);
    } else if (p < spec_.read_proportion + spec_.update_proportion +
                       spec_.insert_proportion + spec_.scan_proportion) {
        op.type = OpType::kScan;
        op.key_index = drawKey();
        op.scan_length = static_cast<int>(
            1 + rng_.uniform(spec_.max_scan_length));
    } else {
        op.type = OpType::kReadModifyWrite;
        op.key_index = drawKey();
    }
    return op;
}

} // namespace mio::ycsb
