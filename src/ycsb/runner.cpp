#include "ycsb/runner.h"

#include <cstring>
#include <thread>
#include <vector>

#include "shard/sharded_kv_store.h"
#include "util/clock.h"

namespace mio::ycsb {

Runner::Runner(KVStore *store, size_t value_size, uint64_t seed,
               bool record_timeline)
    : store_(store), value_size_(value_size), seed_(seed),
      record_timeline_(record_timeline), value_rng_(seed * 11 + 5)
{
    value_rng_.fillString(&value_buf_, value_size_);
}

std::string
Runner::valueFor(uint64_t key_index)
{
    // Stamp the key index into the shared value buffer so reads can be
    // validated without storing a copy of every value.
    std::string v = value_buf_;
    if (v.size() >= 16) {
        char tag[17];
        snprintf(tag, sizeof(tag), "%016llu",
                 static_cast<unsigned long long>(key_index));
        memcpy(v.data(), tag, 16);
    }
    return v;
}

RunResult
Runner::load(uint64_t record_count, int threads)
{
    RunResult result;
    result.workload = "Load";
    result.operations = record_count;

    if (threads <= 1) {
        if (record_timeline_)
            result.timeline.reserve(record_count);
        Stopwatch total;
        for (uint64_t i = 0; i < record_count; i++) {
            Stopwatch op;
            store_->put(makeKey(i), valueFor(i));
            double us = op.elapsedMicros();
            result.latency_us.add(us);
            if (record_timeline_) {
                result.timeline.add(
                    static_cast<uint64_t>(total.elapsedMicros()), us);
            }
        }
        result.seconds = total.elapsedSeconds();
        return result;
    }

    // Shard-affine when thread count matches the facade's shard
    // count: thread t walks the whole key range but only puts the
    // keys that route to shard t, so no two threads ever contend on
    // one shard's writer queue.
    auto *sharded = dynamic_cast<shard::ShardedKvStore *>(store_);
    const bool affine =
        sharded != nullptr && threads == sharded->numShards();
    std::vector<Histogram> hists(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    Stopwatch total;
    for (int t = 0; t < threads; t++) {
        workers.emplace_back([&, t] {
            for (uint64_t i = 0; i < record_count; i++) {
                std::string key = makeKey(i);
                if (affine) {
                    if (sharded->router().shardOf(key) != t)
                        continue;
                } else if (i % static_cast<uint64_t>(threads) !=
                           static_cast<uint64_t>(t)) {
                    continue;
                }
                Stopwatch op;
                store_->put(key, valueFor(i));
                hists[t].add(op.elapsedMicros());
            }
        });
    }
    for (auto &w : workers)
        w.join();
    result.seconds = total.elapsedSeconds();
    for (const Histogram &h : hists)
        result.latency_us.merge(h);
    return result;
}

RunResult
Runner::run(const WorkloadSpec &spec, uint64_t record_count,
            uint64_t op_count, int threads)
{
    RunResult result;
    result.workload = spec.name;
    result.operations = op_count;

    // One client's op loop; shared by the serial and threaded paths.
    auto runClient = [&](WorkloadGenerator &gen, uint64_t ops,
                         Histogram *hist, Stopwatch *total,
                         LatencyTimeline *timeline) {
        std::string value;
        std::vector<std::pair<std::string, std::string>> scan_out;
        for (uint64_t i = 0; i < ops; i++) {
            auto op = gen.next();
            std::string key = makeKey(op.key_index);
            Stopwatch op_timer;
            switch (op.type) {
              case OpType::kRead:
                store_->get(key, &value);
                break;
              case OpType::kUpdate:
                store_->put(key, valueFor(op.key_index));
                break;
              case OpType::kInsert:
                store_->put(key, valueFor(op.key_index));
                break;
              case OpType::kScan:
                store_->scan(key, op.scan_length, &scan_out);
                break;
              case OpType::kReadModifyWrite:
                store_->get(key, &value);
                store_->put(key, valueFor(op.key_index));
                break;
            }
            double us = op_timer.elapsedMicros();
            hist->add(us);
            if (timeline != nullptr) {
                timeline->add(
                    static_cast<uint64_t>(total->elapsedMicros()), us);
            }
        }
    };

    if (threads <= 1) {
        if (record_timeline_)
            result.timeline.reserve(op_count);
        WorkloadGenerator gen(spec, record_count, seed_);
        Stopwatch total;
        runClient(gen, op_count, &result.latency_us, &total,
                  record_timeline_ ? &result.timeline : nullptr);
        result.seconds = total.elapsedSeconds();
        return result;
    }

    // Multi-client: independent generators (distinct seeds) preserve
    // the request distribution per thread; histograms merge at the
    // end. op_count splits evenly with the remainder on thread 0.
    std::vector<Histogram> hists(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const uint64_t per = op_count / static_cast<uint64_t>(threads);
    Stopwatch total;
    for (int t = 0; t < threads; t++) {
        const uint64_t ops =
            per + (t == 0 ? op_count % static_cast<uint64_t>(threads)
                          : 0);
        workers.emplace_back([&, t, ops] {
            WorkloadGenerator gen(
                spec, record_count,
                seed_ + static_cast<uint64_t>(t) * 7919);
            Stopwatch client_total;
            runClient(gen, ops, &hists[t], &client_total, nullptr);
        });
    }
    for (auto &w : workers)
        w.join();
    result.seconds = total.elapsedSeconds();
    for (const Histogram &h : hists)
        result.latency_us.merge(h);
    return result;
}

} // namespace mio::ycsb
