#include "ycsb/runner.h"

#include <cstring>

#include "util/clock.h"

namespace mio::ycsb {

Runner::Runner(KVStore *store, size_t value_size, uint64_t seed,
               bool record_timeline)
    : store_(store), value_size_(value_size), seed_(seed),
      record_timeline_(record_timeline), value_rng_(seed * 11 + 5)
{
    value_rng_.fillString(&value_buf_, value_size_);
}

std::string
Runner::valueFor(uint64_t key_index)
{
    // Stamp the key index into the shared value buffer so reads can be
    // validated without storing a copy of every value.
    std::string v = value_buf_;
    if (v.size() >= 16) {
        char tag[17];
        snprintf(tag, sizeof(tag), "%016llu",
                 static_cast<unsigned long long>(key_index));
        memcpy(v.data(), tag, 16);
    }
    return v;
}

RunResult
Runner::load(uint64_t record_count)
{
    RunResult result;
    result.workload = "Load";
    result.operations = record_count;
    if (record_timeline_)
        result.timeline.reserve(record_count);

    Stopwatch total;
    for (uint64_t i = 0; i < record_count; i++) {
        Stopwatch op;
        store_->put(makeKey(i), valueFor(i));
        double us = op.elapsedMicros();
        result.latency_us.add(us);
        if (record_timeline_) {
            result.timeline.add(
                static_cast<uint64_t>(total.elapsedMicros()), us);
        }
    }
    result.seconds = total.elapsedSeconds();
    return result;
}

RunResult
Runner::run(const WorkloadSpec &spec, uint64_t record_count,
            uint64_t op_count)
{
    RunResult result;
    result.workload = spec.name;
    result.operations = op_count;
    if (record_timeline_)
        result.timeline.reserve(op_count);

    WorkloadGenerator gen(spec, record_count, seed_);
    std::string value;
    std::vector<std::pair<std::string, std::string>> scan_out;

    Stopwatch total;
    for (uint64_t i = 0; i < op_count; i++) {
        auto op = gen.next();
        std::string key = makeKey(op.key_index);
        Stopwatch op_timer;
        switch (op.type) {
          case OpType::kRead:
            store_->get(key, &value);
            break;
          case OpType::kUpdate:
            store_->put(key, valueFor(op.key_index));
            break;
          case OpType::kInsert:
            store_->put(key, valueFor(op.key_index));
            break;
          case OpType::kScan:
            store_->scan(key, op.scan_length, &scan_out);
            break;
          case OpType::kReadModifyWrite:
            store_->get(key, &value);
            store_->put(key, valueFor(op.key_index));
            break;
        }
        double us = op_timer.elapsedMicros();
        result.latency_us.add(us);
        if (record_timeline_) {
            result.timeline.add(
                static_cast<uint64_t>(total.elapsedMicros()), us);
        }
    }
    result.seconds = total.elapsedSeconds();
    return result;
}

} // namespace mio::ycsb
