/**
 * @file
 * Sorted-block builder with shared-prefix key compression and restart
 * points, the on-"disk" unit of the SSTable format. This is the real
 * serialization work whose cost the paper attributes MemTable-flush
 * stalls to in SSTable-based stores.
 */
#ifndef MIO_SSTABLE_BLOCK_BUILDER_H_
#define MIO_SSTABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace mio {

class BlockBuilder
{
  public:
    explicit BlockBuilder(int restart_interval = 16);

    /** Keys must be added in strictly increasing internal-key order. */
    void add(const Slice &key, const Slice &value);

    /** Finish the block and return its serialized contents. */
    Slice finish();

    void reset();
    size_t currentSizeEstimate() const;
    bool empty() const { return counter_ == 0 && restarts_.size() == 1; }

  private:
    int restart_interval_;
    std::string buffer_;
    std::vector<uint32_t> restarts_;
    int counter_;
    bool finished_;
    std::string last_key_;
};

} // namespace mio

#endif // MIO_SSTABLE_BLOCK_BUILDER_H_
