#include "sstable/table_cache.h"

namespace mio {

TableCache::TableCache(const sim::StorageMedium *medium, size_t capacity,
                       std::atomic<uint64_t> *deser_time_ns)
    : medium_(medium), capacity_(capacity), deser_time_ns_(deser_time_ns)
{}

Status
TableCache::lookup(const std::string &name,
                   std::shared_ptr<TableReader> *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(name);
        if (it != entries_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
            *out = it->second.reader;
            return Status::ok();
        }
    }

    // Open outside the lock; racing opens of the same table are
    // harmless (last one wins in the map).
    std::shared_ptr<TableReader> reader;
    Status s = TableReader::open(medium_, name, &reader, deser_time_ns_);
    if (!s.isOk())
        return s;

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        lru_.push_front(name);
        entries_[name] = Entry{reader, lru_.begin()};
        if (capacity_ != 0 && entries_.size() > capacity_) {
            const std::string &victim = lru_.back();
            entries_.erase(victim);
            lru_.pop_back();
        }
    } else {
        reader = it->second.reader;
    }
    *out = std::move(reader);
    return Status::ok();
}

void
TableCache::evict(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
    }
}

size_t
TableCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace mio
