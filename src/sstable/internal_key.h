/**
 * @file
 * Internal-key encoding shared by the SSTable format and the leveled
 * LSM substrate: user_key followed by an 8-byte trailer packing
 * (sequence << 8 | type). Ordering is user key ascending, then
 * sequence descending, so the newest version of a key sorts first --
 * the same ordering the skip list uses natively.
 */
#ifndef MIO_SSTABLE_INTERNAL_KEY_H_
#define MIO_SSTABLE_INTERNAL_KEY_H_

#include <cstdint>
#include <string>

#include "skiplist/skiplist.h"
#include "util/coding.h"
#include "util/slice.h"

namespace mio {

constexpr uint64_t kMaxSequence = (1ULL << 56) - 1;

inline uint64_t
packSeqType(uint64_t seq, EntryType type)
{
    return (seq << 8) | static_cast<uint64_t>(type);
}

/** Append the internal-key encoding of (user_key, seq, type). */
inline void
appendInternalKey(std::string *dst, const Slice &user_key, uint64_t seq,
                  EntryType type)
{
    dst->append(user_key.data(), user_key.size());
    putFixed64(dst, packSeqType(seq, type));
}

/** Parsed view of an internal key. */
struct ParsedInternalKey {
    Slice user_key;
    uint64_t seq;
    EntryType type;
};

inline bool
parseInternalKey(const Slice &internal_key, ParsedInternalKey *result)
{
    if (internal_key.size() < 8)
        return false;
    uint64_t packed =
        decodeFixed64(internal_key.data() + internal_key.size() - 8);
    result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
    result->seq = packed >> 8;
    result->type = static_cast<EntryType>(packed & 0xff);
    return true;
}

inline Slice
extractUserKey(const Slice &internal_key)
{
    return Slice(internal_key.data(), internal_key.size() - 8);
}

/**
 * Three-way comparison in internal-key order (user key asc, seq desc).
 */
inline int
compareInternalKey(const Slice &a, const Slice &b)
{
    int r = extractUserKey(a).compare(extractUserKey(b));
    if (r != 0)
        return r;
    uint64_t pa = decodeFixed64(a.data() + a.size() - 8);
    uint64_t pb = decodeFixed64(b.data() + b.size() - 8);
    if (pa > pb)
        return -1;  // larger seq sorts first
    if (pa < pb)
        return +1;
    return 0;
}

/** Internal key used as a lookup target: (key, seq=max) sorts first. */
inline std::string
makeLookupKey(const Slice &user_key, uint64_t snapshot_seq = kMaxSequence)
{
    std::string k;
    appendInternalKey(&k, user_key, snapshot_seq, EntryType::kValue);
    return k;
}

} // namespace mio

#endif // MIO_SSTABLE_INTERNAL_KEY_H_
