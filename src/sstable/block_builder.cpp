#include "sstable/block_builder.h"

#include <cassert>

#include "util/coding.h"

namespace mio {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval), counter_(0), finished_(false)
{
    restarts_.push_back(0);
}

void
BlockBuilder::reset()
{
    buffer_.clear();
    restarts_.clear();
    restarts_.push_back(0);
    counter_ = 0;
    finished_ = false;
    last_key_.clear();
}

size_t
BlockBuilder::currentSizeEstimate() const
{
    return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
           sizeof(uint32_t);
}

void
BlockBuilder::add(const Slice &key, const Slice &value)
{
    assert(!finished_);
    size_t shared = 0;
    if (counter_ < restart_interval_) {
        const size_t min_len =
            key.size() < last_key_.size() ? key.size() : last_key_.size();
        while (shared < min_len && last_key_[shared] == key[shared])
            shared++;
    } else {
        restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
        counter_ = 0;
    }
    const size_t non_shared = key.size() - shared;
    putVarint32(&buffer_, static_cast<uint32_t>(shared));
    putVarint32(&buffer_, static_cast<uint32_t>(non_shared));
    putVarint32(&buffer_, static_cast<uint32_t>(value.size()));
    buffer_.append(key.data() + shared, non_shared);
    buffer_.append(value.data(), value.size());

    last_key_.resize(shared);
    last_key_.append(key.data() + shared, non_shared);
    counter_++;
}

Slice
BlockBuilder::finish()
{
    for (uint32_t restart : restarts_)
        putFixed32(&buffer_, restart);
    putFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
    finished_ = true;
    return Slice(buffer_);
}

} // namespace mio
