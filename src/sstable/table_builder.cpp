#include "sstable/table_builder.h"

#include <cassert>

#include "bloom/bloom_filter.h"
#include "sstable/internal_key.h"
#include "util/coding.h"
#include "util/hash.h"

namespace mio {

TableBuilder::TableBuilder(size_t block_size, int bits_per_key)
    : block_size_(block_size), bits_per_key_(bits_per_key)
{}

void
TableBuilder::add(const Slice &internal_key, const Slice &value)
{
    assert(last_key_.empty() ||
           compareInternalKey(internal_key, Slice(last_key_)) > 0);
    if (num_entries_ == 0)
        smallest_key_ = internal_key.toString();

    if (pending_index_entry_) {
        // last_key_ still holds the final key of the finished block; it
        // is a valid upper bound separator for that block.
        std::string handle;
        putVarint64(&handle, pending_handle_.offset);
        putVarint64(&handle, pending_handle_.size);
        index_block_.add(Slice(last_key_), Slice(handle));
        pending_index_entry_ = false;
    }

    key_hashes_.push_back(
        BloomFilter::keyHashes(extractUserKey(internal_key)));
    data_block_.add(internal_key, value);
    last_key_ = internal_key.toString();
    num_entries_++;

    if (data_block_.currentSizeEstimate() >= block_size_)
        flushDataBlock();
}

void
TableBuilder::flushDataBlock()
{
    if (data_block_.empty())
        return;
    Slice contents = data_block_.finish();
    pending_handle_.offset = buffer_.size();
    pending_handle_.size = contents.size();
    buffer_.append(contents.data(), contents.size());
    data_block_.reset();
    pending_index_entry_ = true;
}

uint64_t
TableBuilder::estimatedSize() const
{
    return buffer_.size() + data_block_.currentSizeEstimate();
}

std::string
TableBuilder::finish()
{
    flushDataBlock();
    if (pending_index_entry_) {
        std::string handle;
        putVarint64(&handle, pending_handle_.offset);
        putVarint64(&handle, pending_handle_.size);
        index_block_.add(Slice(last_key_), Slice(handle));
        pending_index_entry_ = false;
    }

    // Bloom block.
    BloomFilter filter = BloomFilter::makeForCapacity(
        num_entries_ ? num_entries_ : 1, bits_per_key_);
    for (const auto &[h1, h2] : key_hashes_)
        filter.addHashes(h1, h2);
    BlockHandle bloom_handle;
    bloom_handle.offset = buffer_.size();
    std::string bloom_bytes;
    filter.encodeTo(&bloom_bytes);
    bloom_handle.size = bloom_bytes.size();
    buffer_.append(bloom_bytes);

    // Index block.
    BlockHandle index_handle;
    index_handle.offset = buffer_.size();
    Slice index_contents = index_block_.finish();
    index_handle.size = index_contents.size();
    buffer_.append(index_contents.data(), index_contents.size());

    // Body checksum over everything before the footer (data + bloom +
    // index): the scrubber's at-rest integrity check.
    uint64_t body_checksum = recordChecksum(buffer_.data(),
                                            buffer_.size());

    // Footer.
    putFixed64(&buffer_, bloom_handle.offset);
    putFixed64(&buffer_, bloom_handle.size);
    putFixed64(&buffer_, index_handle.offset);
    putFixed64(&buffer_, index_handle.size);
    putFixed64(&buffer_, num_entries_);
    putFixed64(&buffer_, body_checksum);
    putFixed64(&buffer_, kTableMagic);

    return std::move(buffer_);
}

} // namespace mio
