/**
 * @file
 * SSTable reader over a StorageMedium blob. Point lookups consult the
 * in-memory bloom filter and index, then read and decode exactly one
 * data block; the decode time is accumulated into an optional
 * deserialization counter, reproducing the cost the paper breaks out
 * in Table 1.
 */
#ifndef MIO_SSTABLE_TABLE_READER_H_
#define MIO_SSTABLE_TABLE_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "bloom/bloom_filter.h"
#include "sim/storage_medium.h"
#include "sstable/block_reader.h"
#include "sstable/internal_key.h"
#include "sstable/table_builder.h"
#include "util/slice.h"
#include "util/status.h"

namespace mio {

class TableReader
{
  public:
    /**
     * Open table blob @p name on @p medium. @p deser_time_ns, when
     * non-null, accumulates nanoseconds spent reading + decoding
     * blocks (the deserialization cost metric).
     */
    static Status open(const sim::StorageMedium *medium,
                       const std::string &name,
                       std::shared_ptr<TableReader> *out,
                       std::atomic<uint64_t> *deser_time_ns = nullptr);

    /**
     * Point lookup for the newest visible version of @p user_key.
     * @return NotFound if absent (or filtered by bloom); OK with
     * *type == kDeletion for tombstones.
     */
    Status get(const Slice &user_key, std::string *value, EntryType *type,
               uint64_t *seq = nullptr,
               uint64_t snapshot_seq = kMaxSequence) const;

    uint64_t numEntries() const { return num_entries_; }
    const std::string &name() const { return name_; }

    /**
     * Re-point the deserialization-time sink. Readers are cached in
     * FileMeta and outlive the store that opened them when NvmState
     * is adopted by a successor, so the adopting store must call this
     * (via LsmTree::rebindStats) or block reads keep charging time
     * into the dead owner's counters. Only valid while quiesced.
     */
    void rebindDeserTimer(std::atomic<uint64_t> *deser_time_ns)
    {
        deser_time_ns_ = deser_time_ns;
    }
    Slice smallestKey() const;
    Slice largestKey() const;

    /**
     * Re-read the whole table body and compare it against the footer's
     * body checksum (the scrubber's at-rest integrity check).
     * @return false when the stored bytes no longer match.
     */
    bool verifyBody() const;

    /** Forward iterator over all (internal key, value) entries. */
    class Iterator
    {
      public:
        explicit Iterator(const TableReader *table);

        bool valid() const;
        void seekToFirst();
        void seek(const Slice &internal_key);
        void next();
        Slice key() const;
        Slice value() const;

      private:
        void loadDataBlock();

        const TableReader *table_;
        std::unique_ptr<Block::Iter> index_iter_;
        std::unique_ptr<Block> data_block_;
        std::unique_ptr<Block::Iter> data_iter_;
    };

  private:
    TableReader() = default;

    Status readBlock(const BlockHandle &handle,
                     std::unique_ptr<Block> *block) const;

    const sim::StorageMedium *medium_ = nullptr;
    std::string name_;
    uint64_t num_entries_ = 0;
    uint64_t body_checksum_ = 0; //!< footer checksum of the body bytes
    uint64_t body_size_ = 0;     //!< bytes before the footer
    BloomFilter bloom_{64, 1};
    std::unique_ptr<Block> index_block_;
    std::string smallest_key_;
    std::string largest_key_;
    std::atomic<uint64_t> *deser_time_ns_ = nullptr;
};

} // namespace mio

#endif // MIO_SSTABLE_TABLE_READER_H_
