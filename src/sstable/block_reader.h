/**
 * @file
 * Iterator over a serialized block; decodes the shared-prefix entries
 * produced by BlockBuilder. Decoding here is the "deserialization"
 * cost the paper measures for SSTable-based stores.
 */
#ifndef MIO_SSTABLE_BLOCK_READER_H_
#define MIO_SSTABLE_BLOCK_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace mio {

/** Immutable parsed block; owns its backing bytes. */
class Block
{
  public:
    explicit Block(std::string contents);

    size_t size() const { return data_.size(); }

    class Iter
    {
      public:
        explicit Iter(const Block *block);

        bool valid() const { return current_ < restarts_offset_; }
        void seekToFirst();
        /** Position at the first entry with internal key >= target. */
        void seek(const Slice &target);
        void next();

        Slice key() const { return Slice(key_); }
        Slice value() const { return value_; }
        Status status() const { return status_; }

      private:
        void seekToRestartPoint(uint32_t index);
        bool parseNextEntry();
        uint32_t restartPoint(uint32_t index) const;

        const Block *block_;
        uint32_t restarts_offset_;
        uint32_t num_restarts_;
        uint32_t current_;       //!< offset of current entry
        uint32_t next_offset_;   //!< offset one past current entry
        std::string key_;
        Slice value_;
        Status status_;
    };

  private:
    friend class Iter;
    std::string data_;
    uint32_t restarts_offset_;
    uint32_t num_restarts_;
};

} // namespace mio

#endif // MIO_SSTABLE_BLOCK_READER_H_
