/**
 * @file
 * Cache of open TableReaders keyed by blob name. The paper's baseline
 * configuration does not limit the table cache, so the default
 * capacity is unbounded; a bound can be set to study eviction.
 */
#ifndef MIO_SSTABLE_TABLE_CACHE_H_
#define MIO_SSTABLE_TABLE_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sstable/table_reader.h"

namespace mio {

class TableCache
{
  public:
    /**
     * @param medium blob storage the tables live on
     * @param capacity max cached readers; 0 means unbounded
     * @param deser_time_ns optional deserialization-time accumulator
     *        handed to every opened reader
     */
    TableCache(const sim::StorageMedium *medium, size_t capacity = 0,
               std::atomic<uint64_t> *deser_time_ns = nullptr);

    /** Fetch (opening if needed) the reader for blob @p name. */
    Status lookup(const std::string &name,
                  std::shared_ptr<TableReader> *out);

    /** Drop a deleted table from the cache. */
    void evict(const std::string &name);

    size_t size() const;

  private:
    const sim::StorageMedium *medium_;
    size_t capacity_;
    std::atomic<uint64_t> *deser_time_ns_;
    mutable std::mutex mu_;
    std::list<std::string> lru_;  //!< front = most recent
    struct Entry {
        std::shared_ptr<TableReader> reader;
        std::list<std::string>::iterator lru_pos;
    };
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace mio

#endif // MIO_SSTABLE_TABLE_CACHE_H_
