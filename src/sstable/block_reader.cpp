#include "sstable/block_reader.h"

#include <cassert>

#include "sstable/internal_key.h"
#include "util/coding.h"

namespace mio {

Block::Block(std::string contents) : data_(std::move(contents))
{
    if (data_.size() < sizeof(uint32_t)) {
        num_restarts_ = 0;
        restarts_offset_ = 0;
        return;
    }
    num_restarts_ = decodeFixed32(data_.data() + data_.size() - 4);
    // A corrupt trailer can claim more restarts than fit in the block;
    // treat such input as empty rather than computing a wrapped offset.
    uint64_t trailer =
        4 + static_cast<uint64_t>(num_restarts_) * sizeof(uint32_t);
    if (trailer > data_.size()) {
        num_restarts_ = 0;
        restarts_offset_ = 0;
        return;
    }
    restarts_offset_ = static_cast<uint32_t>(data_.size() - trailer);
}

Block::Iter::Iter(const Block *block)
    : block_(block), restarts_offset_(block->restarts_offset_),
      num_restarts_(block->num_restarts_), current_(restarts_offset_),
      next_offset_(restarts_offset_)
{}

uint32_t
Block::Iter::restartPoint(uint32_t index) const
{
    assert(index < num_restarts_);
    return decodeFixed32(block_->data_.data() + restarts_offset_ +
                         index * sizeof(uint32_t));
}

void
Block::Iter::seekToRestartPoint(uint32_t index)
{
    key_.clear();
    next_offset_ = restartPoint(index);
    current_ = next_offset_;
}

bool
Block::Iter::parseNextEntry()
{
    current_ = next_offset_;
    if (current_ >= restarts_offset_)
        return false;
    const char *p = block_->data_.data() + current_;
    const char *limit = block_->data_.data() + restarts_offset_;
    uint32_t shared, non_shared, value_len;
    p = getVarint32Ptr(p, limit, &shared);
    if (p == nullptr) {
        status_ = Status::corruption("bad block entry");
        return false;
    }
    p = getVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) {
        status_ = Status::corruption("bad block entry");
        return false;
    }
    p = getVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared + value_len > limit ||
        shared > key_.size()) {
        status_ = Status::corruption("bad block entry");
        return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_len);
    next_offset_ =
        static_cast<uint32_t>(p + non_shared + value_len -
                              block_->data_.data());
    return true;
}

void
Block::Iter::seekToFirst()
{
    if (num_restarts_ == 0) {
        current_ = restarts_offset_;
        return;
    }
    seekToRestartPoint(0);
    if (!parseNextEntry())
        current_ = restarts_offset_;
}

void
Block::Iter::next()
{
    if (!parseNextEntry())
        current_ = restarts_offset_;
}

void
Block::Iter::seek(const Slice &target)
{
    if (num_restarts_ == 0) {
        current_ = restarts_offset_;
        return;
    }
    // Binary search over restart points: find the last restart whose
    // key is < target (restart entries store full keys).
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
        uint32_t mid = (left + right + 1) / 2;
        const char *p = block_->data_.data() + restartPoint(mid);
        const char *limit = block_->data_.data() + restarts_offset_;
        uint32_t shared, non_shared, value_len;
        p = getVarint32Ptr(p, limit, &shared);
        p = p ? getVarint32Ptr(p, limit, &non_shared) : nullptr;
        p = p ? getVarint32Ptr(p, limit, &value_len) : nullptr;
        if (p == nullptr || shared != 0) {
            status_ = Status::corruption("bad restart entry");
            current_ = restarts_offset_;
            return;
        }
        Slice mid_key(p, non_shared);
        if (compareInternalKey(mid_key, target) < 0)
            left = mid;
        else
            right = mid - 1;
    }
    seekToRestartPoint(left);
    // Linear scan within the restart interval.
    while (parseNextEntry()) {
        if (compareInternalKey(Slice(key_), target) >= 0)
            return;
    }
    current_ = restarts_offset_;
}

} // namespace mio
