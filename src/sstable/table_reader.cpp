#include "sstable/table_reader.h"

#include <cstring>

#include "util/clock.h"
#include "util/coding.h"
#include "util/hash.h"

namespace mio {

namespace {

/** Accumulate elapsed time into an optional counter. */
class OptionalTimer
{
  public:
    explicit OptionalTimer(std::atomic<uint64_t> *target)
        : target_(target), start_(target ? nowNanos() : 0)
    {}
    ~OptionalTimer()
    {
        if (target_ != nullptr) {
            target_->fetch_add(nowNanos() - start_,
                               std::memory_order_relaxed);
        }
    }

  private:
    std::atomic<uint64_t> *target_;
    uint64_t start_;
};

} // namespace

Status
TableReader::open(const sim::StorageMedium *medium, const std::string &name,
                  std::shared_ptr<TableReader> *out,
                  std::atomic<uint64_t> *deser_time_ns)
{
    uint64_t blob_size = medium->blobSize(name);
    if (blob_size < kTableFooterSize)
        return Status::corruption("table too small: " + name);

    char footer[kTableFooterSize];
    Status s = medium->readBlobRange(name, blob_size - kTableFooterSize,
                                     kTableFooterSize, footer);
    if (!s.isOk())
        return s;
    if (decodeFixed64(footer + 48) != kTableMagic)
        return Status::corruption("bad table magic: " + name);

    auto table = std::shared_ptr<TableReader>(new TableReader());
    table->medium_ = medium;
    table->name_ = name;
    table->deser_time_ns_ = deser_time_ns;

    BlockHandle bloom_handle{decodeFixed64(footer),
                             decodeFixed64(footer + 8)};
    BlockHandle index_handle{decodeFixed64(footer + 16),
                             decodeFixed64(footer + 24)};
    table->num_entries_ = decodeFixed64(footer + 32);
    table->body_checksum_ = decodeFixed64(footer + 40);
    table->body_size_ = blob_size - kTableFooterSize;

    std::string bloom_bytes(bloom_handle.size, '\0');
    s = medium->readBlobRange(name, bloom_handle.offset, bloom_handle.size,
                              bloom_bytes.data());
    if (!s.isOk())
        return s;
    if (!BloomFilter::decodeFrom(Slice(bloom_bytes), &table->bloom_))
        return Status::corruption("bad bloom block: " + name);

    s = table->readBlock(index_handle, &table->index_block_);
    if (!s.isOk())
        return s;

    // Key range: first key of first block, last key of last block.
    Block::Iter index_iter(table->index_block_.get());
    index_iter.seekToFirst();
    if (index_iter.valid()) {
        Iterator it(table.get());
        it.seekToFirst();
        if (it.valid())
            table->smallest_key_ = it.key().toString();
        std::string last_index_key;
        while (index_iter.valid()) {
            last_index_key = index_iter.key().toString();
            index_iter.next();
        }
        table->largest_key_ = last_index_key;
    }

    *out = std::move(table);
    return Status::ok();
}

Slice
TableReader::smallestKey() const
{
    return Slice(smallest_key_);
}

Slice
TableReader::largestKey() const
{
    return Slice(largest_key_);
}

bool
TableReader::verifyBody() const
{
    std::string body(body_size_, '\0');
    Status s = medium_->readBlobRange(name_, 0, body_size_, body.data());
    if (!s.isOk())
        return false;
    return recordChecksum(body.data(), body.size()) == body_checksum_;
}

Status
TableReader::readBlock(const BlockHandle &handle,
                       std::unique_ptr<Block> *block) const
{
    OptionalTimer timer(deser_time_ns_);
    std::string contents(handle.size, '\0');
    Status s = medium_->readBlobRange(name_, handle.offset, handle.size,
                                      contents.data());
    if (!s.isOk())
        return s;
    *block = std::make_unique<Block>(std::move(contents));
    return Status::ok();
}

Status
TableReader::get(const Slice &user_key, std::string *value, EntryType *type,
                 uint64_t *seq, uint64_t snapshot_seq) const
{
    if (!bloom_.mayContain(user_key))
        return Status::notFound(user_key);

    std::string lookup = makeLookupKey(user_key, snapshot_seq);
    Block::Iter index_iter(index_block_.get());
    index_iter.seek(Slice(lookup));
    if (!index_iter.valid())
        return Status::notFound(user_key);

    Slice handle_contents = index_iter.value();
    uint64_t offset, size;
    Slice input = handle_contents;
    if (!getVarint64(&input, &offset) || !getVarint64(&input, &size))
        return Status::corruption("bad index handle");

    std::unique_ptr<Block> block;
    Status s = readBlock(BlockHandle{offset, size}, &block);
    if (!s.isOk())
        return s;

    OptionalTimer timer(deser_time_ns_);
    Block::Iter data_iter(block.get());
    data_iter.seek(Slice(lookup));
    if (!data_iter.valid())
        return Status::notFound(user_key);

    ParsedInternalKey parsed;
    if (!parseInternalKey(data_iter.key(), &parsed))
        return Status::corruption("bad internal key");
    if (parsed.user_key != user_key)
        return Status::notFound(user_key);

    *type = parsed.type;
    if (seq != nullptr)
        *seq = parsed.seq;
    if (parsed.type != EntryType::kDeletion)
        value->assign(data_iter.value().data(), data_iter.value().size());
    return Status::ok();
}

TableReader::Iterator::Iterator(const TableReader *table)
    : table_(table),
      index_iter_(std::make_unique<Block::Iter>(table->index_block_.get()))
{}

bool
TableReader::Iterator::valid() const
{
    return data_iter_ != nullptr && data_iter_->valid();
}

void
TableReader::Iterator::loadDataBlock()
{
    data_block_.reset();
    data_iter_.reset();
    while (index_iter_->valid()) {
        Slice handle_contents = index_iter_->value();
        uint64_t offset, size;
        Slice input = handle_contents;
        if (!getVarint64(&input, &offset) || !getVarint64(&input, &size))
            return;
        std::unique_ptr<Block> block;
        if (!table_->readBlock(BlockHandle{offset, size}, &block).isOk())
            return;
        data_block_ = std::move(block);
        data_iter_ = std::make_unique<Block::Iter>(data_block_.get());
        data_iter_->seekToFirst();
        if (data_iter_->valid())
            return;
        index_iter_->next();
    }
}

void
TableReader::Iterator::seekToFirst()
{
    index_iter_->seekToFirst();
    loadDataBlock();
}

void
TableReader::Iterator::seek(const Slice &internal_key)
{
    index_iter_->seek(internal_key);
    loadDataBlock();
    if (data_iter_ != nullptr) {
        data_iter_->seek(internal_key);
        if (!data_iter_->valid()) {
            index_iter_->next();
            loadDataBlock();
        }
    }
}

void
TableReader::Iterator::next()
{
    data_iter_->next();
    if (!data_iter_->valid()) {
        index_iter_->next();
        loadDataBlock();
    }
}

Slice
TableReader::Iterator::key() const
{
    return data_iter_->key();
}

Slice
TableReader::Iterator::value() const
{
    return data_iter_->value();
}

} // namespace mio
