/**
 * @file
 * SSTable builder: serializes sorted (internal key, value) entries into
 * the block-based table format used by the leveled LSM substrate (the
 * baselines' persistent format, and MioDB's bottom level in SSD mode).
 *
 * Layout:
 *   [data block]*
 *   [bloom filter block]
 *   [index block]   (last-key-of-block -> BlockHandle)
 *   [footer]        (bloom handle, index handle, entry count,
 *                    body checksum, magic)
 *
 * The body checksum covers every byte before the footer; the scrubber
 * re-reads tables against it to catch at-rest media corruption.
 */
#ifndef MIO_SSTABLE_TABLE_BUILDER_H_
#define MIO_SSTABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sstable/block_builder.h"
#include "util/slice.h"

namespace mio {

/** Location of a block inside a table blob. */
struct BlockHandle {
    uint64_t offset = 0;
    uint64_t size = 0;
};

/** Fixed-size footer: 7 x fixed64 (magic last). */
constexpr size_t kTableFooterSize = 56;
constexpr uint64_t kTableMagic = 0x4d696f4442744231ULL; // "MioDBtB1"

class TableBuilder
{
  public:
    explicit TableBuilder(size_t block_size = 4096, int bits_per_key = 16);

    /** Add entries in strictly increasing internal-key order. */
    void add(const Slice &internal_key, const Slice &value);

    /**
     * Finalize and return the serialized table. The builder is spent
     * afterwards.
     */
    std::string finish();

    uint64_t numEntries() const { return num_entries_; }
    uint64_t estimatedSize() const;
    const std::string &smallestKey() const { return smallest_key_; }
    const std::string &largestKey() const { return last_key_; }

  private:
    void flushDataBlock();

    size_t block_size_;
    int bits_per_key_;
    std::string buffer_;              //!< serialized table so far
    BlockBuilder data_block_;
    BlockBuilder index_block_;
    std::vector<std::pair<uint64_t, uint64_t>> key_hashes_;
    uint64_t num_entries_ = 0;
    std::string smallest_key_;
    std::string last_key_;
    bool pending_index_entry_ = false;
    BlockHandle pending_handle_;
};

} // namespace mio

#endif // MIO_SSTABLE_TABLE_BUILDER_H_
