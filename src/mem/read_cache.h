/**
 * @file
 * ReadCache: a sharded, lock-striped DRAM cache for values whose
 * authoritative copy lives below the DRAM write path (NVM buffer
 * levels, the data repository, the value log). MioDB's read path
 * probes it after missing the MemTable and immutables and before
 * descending the buffer levels, so DRAM answers repeat reads of
 * NVM/SSD-resident keys at DRAM latency -- the read half of the
 * hybrid-memory split the MemoryGovernor arbitrates.
 *
 * Staleness safety is epoch-based. Each stripe carries an epoch that
 * every invalidation bumps. A reader that misses captures the stripe
 * epoch *under the stripe lock, before* descending to the levels;
 * the later insert() is dropped if the epoch moved. Combined with
 * the store's invalidation discipline -- every key of a flushed
 * MemTable is invalidated after the L0 install and before the
 * immutable is retired from the read path -- a fill can never bury a
 * newer version: either the reader's descent saw the new L0 table,
 * or the invalidation ran after the epoch capture and the insert
 * aborts. Merges conserve versions and GC relocations are
 * byte-identical, so neither needs invalidation (DESIGN.md Sec. 5k
 * carries the full argument); quarantine events clear the whole
 * cache instead, because corruption makes "which keys?" unanswerable.
 *
 * Eviction is per-stripe LRU and does NOT bump the epoch (evicting
 * can't create staleness). Capacity is divided evenly across
 * stripes; setCapacity() retargets and trims eagerly, which is how
 * the governor's tuner moves take effect.
 */
#ifndef MIO_MEM_READ_CACHE_H_
#define MIO_MEM_READ_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kv/store_stats.h"
#include "mem/memory_governor.h"
#include "util/slice.h"

namespace mio::mem {

class ReadCache
{
  public:
    /**
     * @param governor charged for kReadCacheDram bytes (may be null).
     * @param stats hit/miss/eviction sink (may be null).
     */
    ReadCache(size_t capacity_bytes,
              std::shared_ptr<MemoryGovernor> governor,
              StatsCounters *stats, int stripes = 16);
    ~ReadCache();

    ReadCache(const ReadCache &) = delete;
    ReadCache &operator=(const ReadCache &) = delete;

    /**
     * Probe for @p key. On a hit, copies the value and returns true.
     * On a miss, captures the stripe epoch into @p epoch_out (under
     * the stripe lock) for the later insert() -- callers MUST take
     * the epoch from here, not read it separately, or the
     * capture-before-descent ordering breaks.
     */
    bool lookup(const Slice &key, std::string *value,
                uint64_t *epoch_out);

    /**
     * Install @p key -> @p value if the stripe epoch still equals
     * @p epoch (from the miss that started this fill). Silently
     * dropped otherwise, or when the entry alone exceeds the stripe
     * share. Evicts LRU entries to fit.
     */
    void insert(const Slice &key, const Slice &value, uint64_t epoch);

    /** Drop @p key and bump its stripe epoch (aborts racing fills). */
    void invalidate(const Slice &key);

    /** Drop everything and bump every stripe epoch. */
    void clear();

    /** Retarget capacity (tuner moves); trims stripes eagerly. */
    void setCapacity(size_t bytes);
    size_t capacity() const;

    size_t bytesUsed() const;
    uint64_t entryCount() const;

    void setStats(StatsCounters *stats);

  private:
    struct Entry {
        std::string value;
        std::list<std::string>::iterator lru_it;
    };
    struct Stripe {
        std::mutex mu;
        uint64_t epoch = 0;
        std::list<std::string> lru; //!< front = most recent; holds keys
        std::unordered_map<std::string, Entry> map;
        size_t bytes = 0;
    };

    /** Map-node + LRU-node + bookkeeping overhead per entry. */
    static constexpr size_t kEntryOverhead = 64;

    static size_t
    entryCharge(size_t key_len, size_t value_len)
    {
        return 2 * key_len + value_len + kEntryOverhead;
    }

    Stripe &stripeFor(const Slice &key);
    size_t stripeShare() const;
    /** Evict from @p s's LRU tail until bytes <= share (holds mu). */
    void trimLocked(Stripe *s, size_t share);
    void bump(std::atomic<uint64_t> StatsCounters::*field);

    const int stripes_n_;
    std::unique_ptr<Stripe[]> stripes_;
    std::shared_ptr<MemoryGovernor> governor_;
    std::atomic<StatsCounters *> stats_;
    std::atomic<size_t> capacity_;
};

} // namespace mio::mem

#endif // MIO_MEM_READ_CACHE_H_
