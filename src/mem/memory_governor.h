/**
 * @file
 * MemoryGovernor: the process-wide memory-budget authority for a
 * store (or a whole shard set). Hybrid-memory LSM performance is
 * decided by how DRAM and NVM are partitioned between write memory
 * and read memory (paper Sec. 2; "Breaking Down Memory Walls" makes
 * the same point for pure-DRAM LSMs), yet the budgets used to be
 * scattered: MemTable capacity in MioOptions, NVM watermarks in the
 * write path, the buffer cap in the compaction path, value-log
 * segments accounted only by the device. This object unifies them:
 *
 *  - named sub-budgets (SubBudget) with a byte limit and a live
 *    charge each; every charger (memtable rotation, PMTable install
 *    boundaries, value-log segments, the DRAM read cache) reserves
 *    from here instead of keeping a private counter;
 *  - redundant total accounting: the governor maintains the sum of
 *    all sub-budget charges *and* an independently updated total, so
 *    a missed release or double charge is detectable at any install
 *    boundary (chargesConsistent, asserted in debug builds and by
 *    the crash sweep's post-recovery validation);
 *  - NVM watermarks as live, tuner-adjustable values (basis points)
 *    instead of fixed option fields;
 *  - the self-tuning DRAM split: tunerPass() observes cumulative
 *    cache / stall / flush counters, and -- with hysteresis (two
 *    agreeing windows to act, two windows of cooldown after acting)
 *    and a per-side floor -- shifts budget between the MemTable
 *    sub-budget and the read cache, and nudges the NVM soft
 *    watermark down under write stalls so migrations start earlier.
 *
 * Thread safety: charge/release/charged/limit are lock-free atomics
 * (charges happen at arena/segment granularity, reads on hot paths).
 * tunerPass is serialized by its own mutex; it is only ever invoked
 * from the kMemTuner periodic scheduler job. The charge ordering
 * (total before sub on charge, sub before total on release)
 * guarantees sum(sub) <= total at every instant, with equality
 * whenever no charge is mid-flight.
 */
#ifndef MIO_MEM_MEMORY_GOVERNOR_H_
#define MIO_MEM_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "kv/store_stats.h"

namespace mio::mem {

/** Named sub-budgets, one per memory consumer family. */
enum class SubBudget : int {
    kMemtableDram = 0,  //!< DRAM write memory (MemTable arenas)
    kReadCacheDram = 1, //!< DRAM read cache for NVM/SSD-resident entries
    kNvmBuffer = 2,     //!< PMTable arenas across all buffer levels
    kVlog = 3,          //!< value-log segment capacity on NVM
};
inline constexpr int kNumSubBudgets = 4;

/** Short stable name for stats dumps and tests. */
const char *subBudgetName(SubBudget b);

class MemoryGovernor
{
  public:
    struct Config {
        /** DRAM write budget per registered memtable charger (one
         *  charger per store instance / shard). */
        size_t memtable_bytes = 1 << 20;
        /** DRAM read-cache budget (machine-wide). 0 disables. */
        size_t read_cache_bytes = 0;
        /** NVM buffer-arena budget. 0 = uncapped. */
        size_t nvm_buffer_bytes = 0;
        /** Value-log segment-capacity budget. 0 = uncapped. */
        size_t vlog_budget_bytes = 0;
        double nvm_soft_watermark = 0.85;
        double nvm_hard_watermark = 0.95;
        /** Enable the kMemTuner policy (tunerPass becomes live). */
        bool adaptive = false;
        /** Neither DRAM side may be tuned below this fraction of the
         *  combined memtable+cache budget. */
        double dram_floor_fraction = 0.125;
        /** kMemTuner cadence. */
        uint64_t tuner_interval_ms = 200;
    };

    /**
     * Cumulative observations feeding one tuner window. Callers pass
     * running counter values (not deltas); the governor differences
     * them against the previous pass internally.
     */
    struct TunerSignals {
        uint64_t cache_hits = 0;
        uint64_t cache_misses = 0;
        uint64_t cache_evictions = 0;
        uint64_t write_stalls = 0;
        uint64_t write_slowdowns = 0;
        uint64_t busy_rejections = 0;
        uint64_t flush_count = 0;
        /** Point-in-time NVM usage fraction (0 when unknown). */
        double nvm_usage = 0.0;
    };

    explicit MemoryGovernor(const Config &config,
                            StatsCounters *stats = nullptr);

    MemoryGovernor(const MemoryGovernor &) = delete;
    MemoryGovernor &operator=(const MemoryGovernor &) = delete;

    /**
     * Account @p bytes against @p b. Unconditional: accounting stays
     * exact even above the limit (enforcement is the caller's
     * admission check, wouldExceed, so denial policies stay where
     * the domain knowledge is).
     */
    void charge(SubBudget b, size_t bytes);
    void release(SubBudget b, size_t bytes);

    uint64_t charged(SubBudget b) const;
    /** Independently maintained sum of all charges (drift witness). */
    uint64_t totalCharged() const;

    /** Current limit for @p b; 0 = unlimited. */
    uint64_t limit(SubBudget b) const;
    /** True when charging @p extra more would cross b's limit. */
    bool wouldExceed(SubBudget b, size_t extra) const;

    /**
     * Register one memtable charger (a store instance / shard). Adds
     * Config::memtable_bytes to the kMemtableDram limit; the per-
     * charger rotation target is the limit divided by the registered
     * count, so the tuner's moves spread evenly across shards.
     */
    void registerMemtableCharger();
    /** Capacity a charger should give its next MemTable. */
    size_t memtableTargetBytes() const;
    int memtableChargers() const;

    /** Live (possibly tuner-adjusted) NVM watermarks. */
    double nvmSoftWatermark() const;
    double nvmHardWatermark() const;

    bool adaptive() const { return config_.adaptive; }
    uint64_t tunerIntervalMs() const { return config_.tuner_interval_ms; }

    /**
     * One tuner window: difference @p now against the previous pass,
     * decide a direction, and -- after two agreeing windows and
     * outside the post-move cooldown -- move one step (1/8 of the
     * combined DRAM budget, clamped to the per-side floor) between
     * kMemtableDram and kReadCacheDram. Independently nudges the NVM
     * soft watermark down while write stalls are observed and back
     * toward the configured value while calm.
     * @return true when any limit or watermark changed (the caller
     *         re-applies the cache capacity).
     */
    bool tunerPass(const TunerSignals &now);
    uint64_t tunerMoves() const;

    /**
     * Drift witness: sum of sub-budget charges equals the redundant
     * total. Exact at quiescence; a concurrent mid-flight charge can
     * only make the sum read low, never high, so `sum > total` is
     * always a bug.
     */
    bool chargesConsistent() const;

    std::string debugString() const;

    /** Re-point the gauge sink (may be nullptr). */
    void setStats(StatsCounters *stats);

    /**
     * Copy the current charges/limits into the stats sink's gov_*
     * gauges. Pull-based: stats() readers call this; charge/release
     * deliberately do not, both to keep the per-op path to two atomic
     * adds and because a charger can outlive the store that owns the
     * sink (a crashed-open's value log drains here with the sink gone).
     */
    void publishGauges();

  private:

    const Config config_;
    std::atomic<StatsCounters *> stats_;

    std::atomic<uint64_t> charged_[kNumSubBudgets]{};
    std::atomic<uint64_t> total_{0};
    std::atomic<uint64_t> limits_[kNumSubBudgets]{};
    std::atomic<int> memtable_chargers_{0};

    /** Soft watermark in basis points (tuner-adjustable). */
    std::atomic<uint64_t> soft_wm_bp_;
    std::atomic<uint64_t> tuner_moves_{0};

    // Tuner window state; only the periodic job takes this mutex.
    std::mutex tuner_mu_;
    TunerSignals prev_{};
    bool have_prev_ = false;
    int pending_dir_ = 0;
    int pending_windows_ = 0;
    int cooldown_ = 0;
};

} // namespace mio::mem

#endif // MIO_MEM_MEMORY_GOVERNOR_H_
