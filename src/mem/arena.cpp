#include "mem/arena.h"

#include <cstdlib>
#include <new>

namespace mio {

namespace {
inline size_t
align8(size_t n)
{
    return (n + 7) & ~static_cast<size_t>(7);
}
} // namespace

Arena::Arena(size_t capacity)
    : capacity_(capacity), used_(0), device_(nullptr),
      charge_allocations_(false), owns_heap_(true)
{
    base_ = static_cast<char *>(malloc(capacity));
    if (base_ == nullptr)
        throw std::bad_alloc();
}

Arena::Arena(size_t capacity, sim::NvmDevice *device,
             bool charge_allocations)
    : capacity_(capacity), used_(0), device_(device),
      charge_allocations_(charge_allocations), owns_heap_(false)
{
    base_ = device_->allocateRegion(capacity);
}

Arena::~Arena()
{
    if (owns_heap_) {
        free(base_);
    } else {
        device_->freeRegion(base_);
    }
}

char *
Arena::allocate(size_t n)
{
    n = align8(n);
    if (base_ == nullptr || used_ + n > capacity_)
        return nullptr;
    char *result = base_ + used_;
    used_ += n;
    if (charge_allocations_ && device_ != nullptr)
        device_->chargeWrite(n);
    return result;
}

ChunkedNvmArena::ChunkedNvmArena(sim::NvmDevice *device, size_t chunk_size)
    : device_(device), chunk_size_(chunk_size), current_(nullptr),
      current_used_(0), current_cap_(0), total_reserved_(0)
{}

ChunkedNvmArena::~ChunkedNvmArena()
{
    for (char *chunk : chunks_)
        device_->freeRegion(chunk);
}

char *
ChunkedNvmArena::allocate(size_t n)
{
    n = align8(n);
    if (current_used_ + n > current_cap_) {
        size_t cap = n > chunk_size_ ? n : chunk_size_;
        char *chunk = device_->allocateRegion(cap);
        if (chunk == nullptr)
            return nullptr;  // budget denied; caller surfaces Status
        current_ = chunk;
        chunks_.push_back(current_);
        current_used_ = 0;
        current_cap_ = cap;
        total_reserved_ += cap;
    }
    char *result = current_ + current_used_;
    current_used_ += n;
    device_->chargeWrite(n);
    return result;
}

} // namespace mio
