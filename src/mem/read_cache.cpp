#include "mem/read_cache.h"

#include <algorithm>
#include <cassert>

namespace mio::mem {

namespace {

/** FNV-1a; stripe selection only, no adversarial resistance needed. */
uint64_t
hashBytes(const char *data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; i++) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

ReadCache::ReadCache(size_t capacity_bytes,
                     std::shared_ptr<MemoryGovernor> governor,
                     StatsCounters *stats, int stripes)
    : stripes_n_(std::max(1, stripes)),
      stripes_(new Stripe[static_cast<size_t>(std::max(1, stripes))]),
      governor_(std::move(governor)), stats_(stats),
      capacity_(capacity_bytes)
{
}

ReadCache::~ReadCache()
{
    // Return every charge before the governor's books close.
    if (governor_ != nullptr) {
        for (int i = 0; i < stripes_n_; i++) {
            Stripe &s = stripes_[i];
            std::lock_guard<std::mutex> lock(s.mu);
            if (s.bytes > 0)
                governor_->release(SubBudget::kReadCacheDram, s.bytes);
            s.bytes = 0;
        }
    }
}

ReadCache::Stripe &
ReadCache::stripeFor(const Slice &key)
{
    uint64_t h = hashBytes(key.data(), key.size());
    return stripes_[h % static_cast<uint64_t>(stripes_n_)];
}

size_t
ReadCache::stripeShare() const
{
    return capacity_.load(std::memory_order_relaxed) /
           static_cast<size_t>(stripes_n_);
}

void
ReadCache::bump(std::atomic<uint64_t> StatsCounters::*field)
{
    StatsCounters *s = stats_.load(std::memory_order_acquire);
    if (s != nullptr)
        (s->*field).fetch_add(1, std::memory_order_relaxed);
}

bool
ReadCache::lookup(const Slice &key, std::string *value,
                  uint64_t *epoch_out)
{
    Stripe &s = stripeFor(key);
    std::string k(key.data(), key.size());
    {
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(k);
        if (it != s.map.end()) {
            *value = it->second.value;
            s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
            bump(&StatsCounters::cache_hits);
            return true;
        }
        if (epoch_out != nullptr)
            *epoch_out = s.epoch;
    }
    bump(&StatsCounters::cache_misses);
    return false;
}

void
ReadCache::insert(const Slice &key, const Slice &value, uint64_t epoch)
{
    size_t share = stripeShare();
    size_t charge = entryCharge(key.size(), value.size());
    if (charge > share)
        return; // never let one entry own a whole stripe
    Stripe &s = stripeFor(key);
    std::string k(key.data(), key.size());
    size_t released = 0, charged = 0;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.epoch != epoch)
            return; // an invalidation ran since the miss: stale fill
        size_t before = s.bytes;
        auto it = s.map.find(k);
        if (it != s.map.end()) {
            // A racing fill of the same key landed first; refresh.
            s.bytes -= entryCharge(k.size(), it->second.value.size());
            it->second.value.assign(value.data(), value.size());
            s.bytes += charge;
            s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
        } else {
            s.lru.push_front(k);
            Entry e;
            e.value.assign(value.data(), value.size());
            e.lru_it = s.lru.begin();
            s.map.emplace(std::move(k), std::move(e));
            s.bytes += charge;
        }
        trimLocked(&s, share);
        if (s.bytes > before)
            charged = s.bytes - before;
        else
            released = before - s.bytes;
    }
    if (governor_ != nullptr) {
        if (charged > 0)
            governor_->charge(SubBudget::kReadCacheDram, charged);
        if (released > 0)
            governor_->release(SubBudget::kReadCacheDram, released);
    }
}

void
ReadCache::invalidate(const Slice &key)
{
    Stripe &s = stripeFor(key);
    std::string k(key.data(), key.size());
    size_t released = 0;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.epoch++;
        auto it = s.map.find(k);
        if (it == s.map.end())
            return;
        released = entryCharge(k.size(), it->second.value.size());
        s.bytes -= released;
        s.lru.erase(it->second.lru_it);
        s.map.erase(it);
    }
    bump(&StatsCounters::cache_invalidations);
    if (governor_ != nullptr && released > 0)
        governor_->release(SubBudget::kReadCacheDram, released);
}

void
ReadCache::clear()
{
    for (int i = 0; i < stripes_n_; i++) {
        Stripe &s = stripes_[i];
        size_t released = 0;
        {
            std::lock_guard<std::mutex> lock(s.mu);
            s.epoch++;
            released = s.bytes;
            s.bytes = 0;
            s.map.clear();
            s.lru.clear();
        }
        if (governor_ != nullptr && released > 0)
            governor_->release(SubBudget::kReadCacheDram, released);
    }
    bump(&StatsCounters::cache_invalidations);
}

void
ReadCache::setCapacity(size_t bytes)
{
    capacity_.store(bytes, std::memory_order_relaxed);
    size_t share = stripeShare();
    for (int i = 0; i < stripes_n_; i++) {
        Stripe &s = stripes_[i];
        size_t released = 0;
        {
            std::lock_guard<std::mutex> lock(s.mu);
            size_t before = s.bytes;
            trimLocked(&s, share);
            released = before - s.bytes;
        }
        if (governor_ != nullptr && released > 0)
            governor_->release(SubBudget::kReadCacheDram, released);
    }
}

size_t
ReadCache::capacity() const
{
    return capacity_.load(std::memory_order_relaxed);
}

size_t
ReadCache::bytesUsed() const
{
    size_t total = 0;
    for (int i = 0; i < stripes_n_; i++) {
        Stripe &s = stripes_[i];
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.bytes;
    }
    return total;
}

uint64_t
ReadCache::entryCount() const
{
    uint64_t total = 0;
    for (int i = 0; i < stripes_n_; i++) {
        Stripe &s = stripes_[i];
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.map.size();
    }
    return total;
}

void
ReadCache::setStats(StatsCounters *stats)
{
    stats_.store(stats, std::memory_order_release);
}

void
ReadCache::trimLocked(Stripe *s, size_t share)
{
    while (s->bytes > share && !s->lru.empty()) {
        const std::string &victim = s->lru.back();
        auto it = s->map.find(victim);
        assert(it != s->map.end());
        s->bytes -=
            entryCharge(victim.size(), it->second.value.size());
        s->map.erase(it);
        s->lru.pop_back();
        bump(&StatsCounters::cache_evictions);
    }
}

} // namespace mio::mem
