#include "mem/memory_governor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace mio::mem {

namespace {

constexpr uint64_t kBpScale = 10000;

uint64_t
toBp(double fraction)
{
    if (fraction <= 0.0)
        return 0;
    if (fraction >= 1.0)
        return kBpScale;
    return static_cast<uint64_t>(fraction * kBpScale + 0.5);
}

} // namespace

const char *
subBudgetName(SubBudget b)
{
    switch (b) {
    case SubBudget::kMemtableDram: return "memtable";
    case SubBudget::kReadCacheDram: return "cache";
    case SubBudget::kNvmBuffer: return "nvmbuf";
    case SubBudget::kVlog: return "vlog";
    }
    return "?";
}

MemoryGovernor::MemoryGovernor(const Config &config, StatsCounters *stats)
    : config_(config), stats_(stats),
      soft_wm_bp_(toBp(config.nvm_soft_watermark))
{
    // kMemtableDram accumulates via registerMemtableCharger so the
    // limit always equals (per-charger budget) x (registered count).
    limits_[static_cast<int>(SubBudget::kMemtableDram)].store(
        0, std::memory_order_relaxed);
    limits_[static_cast<int>(SubBudget::kReadCacheDram)].store(
        config.read_cache_bytes, std::memory_order_relaxed);
    limits_[static_cast<int>(SubBudget::kNvmBuffer)].store(
        config.nvm_buffer_bytes, std::memory_order_relaxed);
    limits_[static_cast<int>(SubBudget::kVlog)].store(
        config.vlog_budget_bytes, std::memory_order_relaxed);
    publishGauges();
}

// charge/release never touch the stats sink: long-lived chargers
// (value-log segments, memtable deleters, pinned snapshots) may drain
// into a governor whose owning store -- and its StatsCounters -- are
// already gone. Gauges are pull-published by stats() readers instead.
void
MemoryGovernor::charge(SubBudget b, size_t bytes)
{
    if (bytes == 0)
        return;
    // Total first: a concurrent chargesConsistent() may observe the
    // mid-flight state, where sum(sub) < total -- never the reverse.
    total_.fetch_add(bytes, std::memory_order_relaxed);
    charged_[static_cast<int>(b)].fetch_add(bytes,
                                            std::memory_order_relaxed);
}

void
MemoryGovernor::release(SubBudget b, size_t bytes)
{
    if (bytes == 0)
        return;
    uint64_t prev = charged_[static_cast<int>(b)].fetch_sub(
        bytes, std::memory_order_relaxed);
    assert(prev >= bytes && "sub-budget release exceeds charge");
    (void)prev;
    total_.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t
MemoryGovernor::charged(SubBudget b) const
{
    return charged_[static_cast<int>(b)].load(std::memory_order_relaxed);
}

uint64_t
MemoryGovernor::totalCharged() const
{
    return total_.load(std::memory_order_relaxed);
}

uint64_t
MemoryGovernor::limit(SubBudget b) const
{
    return limits_[static_cast<int>(b)].load(std::memory_order_relaxed);
}

bool
MemoryGovernor::wouldExceed(SubBudget b, size_t extra) const
{
    uint64_t lim = limit(b);
    if (lim == 0)
        return false;
    return charged(b) + extra > lim;
}

void
MemoryGovernor::registerMemtableCharger()
{
    memtable_chargers_.fetch_add(1, std::memory_order_relaxed);
    limits_[static_cast<int>(SubBudget::kMemtableDram)].fetch_add(
        config_.memtable_bytes, std::memory_order_relaxed);
    publishGauges();
}

size_t
MemoryGovernor::memtableTargetBytes() const
{
    int chargers =
        std::max(1, memtable_chargers_.load(std::memory_order_relaxed));
    uint64_t lim = limit(SubBudget::kMemtableDram);
    if (lim == 0)
        return config_.memtable_bytes;
    // Never hand out a degenerate arena even if the floor config is
    // hostile; 64 KiB still holds a useful handful of entries.
    return std::max<uint64_t>(lim / static_cast<uint64_t>(chargers),
                              64 << 10);
}

int
MemoryGovernor::memtableChargers() const
{
    return memtable_chargers_.load(std::memory_order_relaxed);
}

double
MemoryGovernor::nvmSoftWatermark() const
{
    return static_cast<double>(
               soft_wm_bp_.load(std::memory_order_relaxed)) /
           kBpScale;
}

double
MemoryGovernor::nvmHardWatermark() const
{
    return config_.nvm_hard_watermark;
}

bool
MemoryGovernor::tunerPass(const TunerSignals &now)
{
    std::lock_guard<std::mutex> lock(tuner_mu_);
    if (!have_prev_) {
        prev_ = now;
        have_prev_ = true;
        return false;
    }
    auto delta = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
    uint64_t hits_d = delta(now.cache_hits, prev_.cache_hits);
    uint64_t miss_d = delta(now.cache_misses, prev_.cache_misses);
    uint64_t evict_d = delta(now.cache_evictions, prev_.cache_evictions);
    uint64_t stall_d = delta(now.write_stalls, prev_.write_stalls) +
                       delta(now.busy_rejections, prev_.busy_rejections);
    uint64_t slow_d =
        delta(now.write_slowdowns, prev_.write_slowdowns);
    prev_ = now;

    bool moved = false;

    // NVM soft watermark: start migrations earlier while writers are
    // stalling on the device, creep back to the configured value when
    // calm. Bounded to [max(0.50, configured - 0.25), configured].
    uint64_t configured = toBp(config_.nvm_soft_watermark);
    uint64_t wm_floor = std::max<uint64_t>(
        5000, configured > 2500 ? configured - 2500 : 0);
    uint64_t soft = soft_wm_bp_.load(std::memory_order_relaxed);
    if (stall_d > 0 && now.nvm_usage > 0.5 && soft > wm_floor) {
        soft = std::max<uint64_t>(wm_floor, soft - 500);
        soft_wm_bp_.store(soft, std::memory_order_relaxed);
        tuner_moves_.fetch_add(1, std::memory_order_relaxed);
        moved = true;
    } else if (stall_d == 0 && slow_d == 0 && soft < configured) {
        soft = std::min<uint64_t>(configured, soft + 250);
        soft_wm_bp_.store(soft, std::memory_order_relaxed);
        moved = true;
    }

    // DRAM split between write memory and the read cache.
    if (cooldown_ > 0) {
        cooldown_--;
        publishGauges();
        return moved;
    }
    int dir = 0;
    if (stall_d > 0 || slow_d > 0) {
        dir = -1; // write pressure: grow the memtable side
    } else if (evict_d > 0 && hits_d + miss_d > 0) {
        dir = +1; // cache churning with no write pressure: grow it
    }
    if (dir != 0 && dir == pending_dir_) {
        pending_windows_++;
    } else {
        pending_dir_ = dir;
        pending_windows_ = dir != 0 ? 1 : 0;
    }
    if (pending_windows_ >= 2) {
        int mi = static_cast<int>(SubBudget::kMemtableDram);
        int ci = static_cast<int>(SubBudget::kReadCacheDram);
        uint64_t mem_l = limits_[mi].load(std::memory_order_relaxed);
        uint64_t cache_l = limits_[ci].load(std::memory_order_relaxed);
        uint64_t dram = mem_l + cache_l;
        uint64_t floor_b = static_cast<uint64_t>(
            static_cast<double>(dram) * config_.dram_floor_fraction);
        uint64_t step = dram / 8;
        // Clamp to the shrinking side's floor headroom.
        uint64_t headroom =
            dir > 0 ? (mem_l > floor_b ? mem_l - floor_b : 0)
                    : (cache_l > floor_b ? cache_l - floor_b : 0);
        step = std::min(step, headroom);
        if (step > 0) {
            if (dir > 0) {
                limits_[mi].store(mem_l - step,
                                  std::memory_order_relaxed);
                limits_[ci].store(cache_l + step,
                                  std::memory_order_relaxed);
            } else {
                limits_[mi].store(mem_l + step,
                                  std::memory_order_relaxed);
                limits_[ci].store(cache_l - step,
                                  std::memory_order_relaxed);
            }
            tuner_moves_.fetch_add(1, std::memory_order_relaxed);
            pending_dir_ = 0;
            pending_windows_ = 0;
            cooldown_ = 2;
            moved = true;
        }
    }
    publishGauges();
    return moved;
}

uint64_t
MemoryGovernor::tunerMoves() const
{
    return tuner_moves_.load(std::memory_order_relaxed);
}

bool
MemoryGovernor::chargesConsistent() const
{
    // Two stable reads of total bracketing the sub sums: if nothing
    // moved, equality must hold; if something moved, retry a few
    // times and accept sum <= total (a mid-flight charge bumps total
    // first, so the sum can only read low).
    for (int attempt = 0; attempt < 4; attempt++) {
        uint64_t before = total_.load(std::memory_order_acquire);
        uint64_t sum = 0;
        for (int i = 0; i < kNumSubBudgets; i++)
            sum += charged_[i].load(std::memory_order_relaxed);
        uint64_t after = total_.load(std::memory_order_acquire);
        if (before == after)
            return sum == before;
        if (sum > std::max(before, after))
            return false;
    }
    return true; // persistently concurrent: no drift evidence
}

std::string
MemoryGovernor::debugString() const
{
    char buf[256];
    std::string out = "governor:";
    for (int i = 0; i < kNumSubBudgets; i++) {
        auto b = static_cast<SubBudget>(i);
        snprintf(buf, sizeof(buf), " %s=%llu/%llu", subBudgetName(b),
                 static_cast<unsigned long long>(charged(b)),
                 static_cast<unsigned long long>(limit(b)));
        out += buf;
    }
    snprintf(buf, sizeof(buf), " total=%llu soft_wm=%.2f moves=%llu",
             static_cast<unsigned long long>(totalCharged()),
             nvmSoftWatermark(),
             static_cast<unsigned long long>(tunerMoves()));
    out += buf;
    return out;
}

void
MemoryGovernor::setStats(StatsCounters *stats)
{
    stats_.store(stats, std::memory_order_release);
    publishGauges();
}

void
MemoryGovernor::publishGauges()
{
    StatsCounters *s = stats_.load(std::memory_order_acquire);
    if (s == nullptr)
        return;
    auto set = [](std::atomic<uint64_t> &a, uint64_t v) {
        a.store(v, std::memory_order_relaxed);
    };
    set(s->gov_memtable_bytes, charged(SubBudget::kMemtableDram));
    set(s->gov_cache_bytes, charged(SubBudget::kReadCacheDram));
    set(s->gov_nvm_buffer_bytes, charged(SubBudget::kNvmBuffer));
    set(s->gov_vlog_bytes, charged(SubBudget::kVlog));
    set(s->gov_memtable_limit, limit(SubBudget::kMemtableDram));
    set(s->gov_cache_limit, limit(SubBudget::kReadCacheDram));
    set(s->tuner_moves, tunerMoves());
}

} // namespace mio::mem
