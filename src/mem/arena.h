/**
 * @file
 * Fixed-capacity contiguous bump allocator.
 *
 * MemTables allocate every skip-list node from one contiguous Arena so
 * that one-piece flushing (paper Sec. 4.2) can relocate the entire
 * table with a single memcpy and then fix internal pointers by the
 * constant base-address delta. The arena can live in DRAM (plain heap)
 * or in a region of the emulated NVM device.
 */
#ifndef MIO_MEM_ARENA_H_
#define MIO_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/nvm_device.h"

namespace mio {

class Arena
{
  public:
    /** DRAM-backed arena of @p capacity bytes. */
    explicit Arena(size_t capacity);

    /**
     * NVM-backed arena carved from @p device. If @p charge_allocations
     * is true every allocation charges NVM write cost for its bytes
     * (used when nodes are built in place in NVM, e.g. NoveLSM's
     * mutable NVM MemTable); pass false when the arena is filled by an
     * explicit metered bulk copy (one-piece flushing).
     */
    Arena(size_t capacity, sim::NvmDevice *device, bool charge_allocations);

    /**
     * False when the NVM device denied the region (capacity budget
     * exhausted): every allocate() returns nullptr and the caller
     * must surface Status::busy / retry instead of using the arena.
     */
    bool valid() const { return base_ != nullptr; }

    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p n bytes, 8-byte aligned.
     * @return pointer into the arena, or nullptr when the arena cannot
     * fit @p n more bytes (the caller rotates to a fresh MemTable).
     */
    char *allocate(size_t n);

    char *base() const { return base_; }
    size_t used() const { return used_; }
    size_t capacity() const { return capacity_; }
    size_t remaining() const { return capacity_ - used_; }

    bool isNvm() const { return device_ != nullptr; }
    sim::NvmDevice *device() const { return device_; }

    /**
     * Mark @p n bytes as used without writing them; used when a
     * relocated image already contains live data (one-piece flush).
     */
    void setUsed(size_t n) { used_ = n; }

  private:
    char *base_;
    size_t capacity_;
    size_t used_;
    sim::NvmDevice *device_;
    bool charge_allocations_;
    bool owns_heap_;
};

/**
 * Growable NVM allocator for the data repository's huge PMTable: nodes
 * created by lazy-copy compaction are allocated here chunk by chunk.
 * Never relocated, so contiguity is not required.
 */
class ChunkedNvmArena
{
  public:
    static constexpr size_t kDefaultChunkSize = 4u << 20;

    explicit ChunkedNvmArena(sim::NvmDevice *device,
                             size_t chunk_size = kDefaultChunkSize);
    ~ChunkedNvmArena();

    ChunkedNvmArena(const ChunkedNvmArena &) = delete;
    ChunkedNvmArena &operator=(const ChunkedNvmArena &) = delete;

    /** Allocate @p n bytes, 8-byte aligned; charges NVM write cost. */
    char *allocate(size_t n);

    size_t memoryUsage() const { return total_reserved_; }
    sim::NvmDevice *device() const { return device_; }

  private:
    sim::NvmDevice *device_;
    size_t chunk_size_;
    char *current_;
    size_t current_used_;
    size_t current_cap_;
    size_t total_reserved_;
    std::vector<char *> chunks_;
};

} // namespace mio

#endif // MIO_MEM_ARENA_H_
