/**
 * @file
 * The data repository and lazy-copy compaction (paper Sec. 4.4).
 *
 * L(n-1) PMTables are physically merged into the repository: the
 * newest version of each key is copied in, older repository versions
 * are unlinked, tombstones delete and are then dropped (nothing lives
 * below the repository). Afterwards the source table's entire arena
 * chain -- including every node logically deleted by earlier
 * zero-copy merges -- is reclaimed in one step.
 *
 * Two repository implementations mirror the paper's two deployments:
 * a huge persistent skip list in NVM (in-memory mode) and a leveled
 * LSM of SSTables on the simulated SSD (DRAM-NVM-SSD mode, Sec. 5.4).
 */
#ifndef MIO_MIODB_LAZY_COPY_MERGE_H_
#define MIO_MIODB_LAZY_COPY_MERGE_H_

#include <memory>

#include "kv/store_stats.h"
#include "lsm/lsm_tree.h"
#include "miodb/pmtable.h"
#include "miodb/zero_copy_merge.h"
#include "sstable/internal_key.h"

namespace mio::miodb {

/** Where fully-compacted data finally lives. */
class Repository
{
  public:
    virtual ~Repository() = default;

    /** Result of one scrub pass over the repository's data. */
    struct ScrubReport {
        uint64_t bytes = 0;        //!< payload bytes verified
        uint64_t corruptions = 0;  //!< checksum mismatches found
        uint64_t quarantined = 0;  //!< tables newly quarantined
    };

    /**
     * Lazy-copy @p src's live entries in; src is spent afterwards.
     * A non-ok status (NVM budget, SSD I/O) leaves the repository
     * consistent; the caller retries -- the merge is idempotent per
     * key/sequence.
     *
     * @param keep_seq oldest pinned snapshot bound: versions (and
     * tombstones) a snapshot at or above it may still need stay
     * stored; with kMaxSequence only the newest version per key
     * survives (the historical behaviour).
     */
    virtual Status mergeTable(PMTable *src,
                              uint64_t keep_seq = kMaxSequence) = 0;

    /**
     * @return true if any version of @p key exists here. With
     * @p verify, entry integrity is checked and a failure sets
     * @p corrupt instead of returning damaged bytes.
     */
    virtual bool get(const Slice &key, std::string *value,
                     EntryType *type, uint64_t *seq,
                     bool verify = false,
                     bool *corrupt = nullptr) const = 0;

    /** Verify stored checksums; quarantine what fails (scrubber). */
    virtual ScrubReport scrub() { return ScrubReport{}; }

    /** Internal-key iterator over the whole repository. */
    virtual std::unique_ptr<lsm::KVIterator> newIterator() const = 0;

    /**
     * Capture an opaque pin of the repository's current version for a
     * snapshot. PmRepository needs none (its skip list retains pinned
     * versions in place, gated by keep_seq); SsdRepository returns a
     * file-list pin that keeps the captured SSTables' blobs alive.
     */
    virtual std::shared_ptr<const void> pinVersion() const
    {
        return nullptr;
    }

    /**
     * Internal-key iterator serving a pinned snapshot: reads the
     * version captured by @p pin (ignored where versions are in-place)
     * and verifies per-entry checksums when @p verify is set.
     */
    virtual std::unique_ptr<lsm::KVIterator>
    newSnapshotIterator(const std::shared_ptr<const void> &pin,
                        bool verify) const
    {
        (void)pin;
        (void)verify;
        return newIterator();
    }

    /**
     * Did post-capture damage poison reads of @p user_key under this
     * pin? (A pinned SSTable quarantined after capture: its bytes are
     * untrusted but the snapshot has no older file to fall back to.)
     */
    virtual bool snapshotCorrupt(const std::shared_ptr<const void> &pin,
                                 const Slice &user_key) const
    {
        (void)pin;
        (void)user_key;
        return false;
    }

    virtual uint64_t entryCount() const = 0;

    /** Drain any repository-internal background work. */
    virtual void waitIdle() {}

    /**
     * Point the repository's counters at a new owner. Called when a
     * surviving NVM image is adopted by a fresh store instance after
     * a (simulated) crash.
     */
    virtual void rebindStats(StatsCounters *stats) = 0;

    /**
     * Restart repository-internal background machinery that a
     * SimCrash froze (SSD-mode compaction jobs). The data itself is
     * durable; only the worker state needs reviving.
     */
    virtual void recoverAfterCrash() {}

    /**
     * Re-point repository-internal background work at the adopting
     * store's scheduler (nullptr detaches: the old owner is dying and
     * its pool with it). The durable repository outlives any one
     * store instance, so like rebindStats this is part of the
     * adoption protocol; call it before recoverAfterCrash.
     */
    virtual void rebindScheduler(sched::BackgroundScheduler *) {}

    /**
     * Install the drop-notification hook (see DropNotify): invoked
     * for every version this repository's compaction discards, so the
     * owning store can decay value-log liveness accounting. Re-set on
     * adoption alongside rebindStats; pass nullptr to detach.
     */
    virtual void setDropNotify(DropNotify fn) { (void)fn; }

    /**
     * Gate bottom-level tombstone reclamation. Instant recovery turns
     * it off while WAL frames are still pending: a tombstone dropped
     * "because nothing lives below" could be resurrected by a frame
     * replaying an older value of the key afterwards. PmRepository
     * needs no override -- its tombstone elision is already gated per
     * merge by keep_seq, which the store floors during recovery.
     */
    virtual void setTombstoneReclaim(bool on) { (void)on; }
};

/** Huge persistent skip list in NVM (the paper's primary design). */
class PmRepository : public Repository
{
  public:
    PmRepository(sim::NvmDevice *device, StatsCounters *stats);

    Status mergeTable(PMTable *src,
                      uint64_t keep_seq = kMaxSequence) override;
    bool get(const Slice &key, std::string *value, EntryType *type,
             uint64_t *seq, bool verify = false,
             bool *corrupt = nullptr) const override;
    std::unique_ptr<lsm::KVIterator> newIterator() const override;
    std::unique_ptr<lsm::KVIterator>
    newSnapshotIterator(const std::shared_ptr<const void> &pin,
                        bool verify) const override;
    uint64_t
    entryCount() const override
    {
        return list_ ? list_->entryCount() : 0;
    }
    void rebindStats(StatsCounters *stats) override { stats_ = stats; }
    ScrubReport scrub() override;
    void
    setDropNotify(DropNotify fn) override
    {
        drop_notify_ = std::move(fn);
    }

    const SkipList &list() const { return *list_; }
    size_t memoryUsage() const { return arena_.memoryUsage(); }
    /** Bytes occupied by unlinked (log-garbage) nodes. */
    uint64_t garbageBytes() const { return garbage_bytes_; }

  private:
    sim::NvmDevice *device_;
    StatsCounters *stats_;
    ChunkedNvmArena arena_;
    std::unique_ptr<SkipList> list_;
    uint64_t garbage_bytes_ = 0;
    DropNotify drop_notify_;
};

/** SSD-mode repository: a leveled LSM of SSTables (paper Sec. 5.4). */
class SsdRepository : public Repository
{
  public:
    /** @param sched the owning store's scheduler -- MioDB passes its
     *  unified pool so SSD-tier compactions share it; nullptr
     *  (standalone tests) gives the inner LsmTree a private pool. */
    SsdRepository(const lsm::LsmOptions &options,
                  sim::StorageMedium *medium, StatsCounters *stats,
                  sched::BackgroundScheduler *sched = nullptr);

    Status mergeTable(PMTable *src,
                      uint64_t keep_seq = kMaxSequence) override;
    bool get(const Slice &key, std::string *value, EntryType *type,
             uint64_t *seq, bool verify = false,
             bool *corrupt = nullptr) const override;
    std::unique_ptr<lsm::KVIterator> newIterator() const override;
    std::shared_ptr<const void> pinVersion() const override;
    std::unique_ptr<lsm::KVIterator>
    newSnapshotIterator(const std::shared_ptr<const void> &pin,
                        bool verify) const override;
    bool snapshotCorrupt(const std::shared_ptr<const void> &pin,
                         const Slice &user_key) const override;
    uint64_t entryCount() const override;
    void waitIdle() override { lsm_.waitIdle(); }
    ScrubReport scrub() override;
    void
    rebindStats(StatsCounters *stats) override
    {
        stats_ = stats;
        lsm_.rebindStats(stats);
    }
    void recoverAfterCrash() override { lsm_.recoverFromCrash(); }
    void
    rebindScheduler(sched::BackgroundScheduler *sched) override
    {
        lsm_.rebindScheduler(sched);
    }
    void
    setDropNotify(DropNotify fn) override
    {
        lsm_.setDropNotify(std::move(fn));
    }
    void
    setTombstoneReclaim(bool on) override
    {
        lsm_.setTombstoneReclaim(on);
    }

    lsm::LsmTree &lsm() { return lsm_; }

  private:
    mutable lsm::LsmTree lsm_;
    StatsCounters *stats_;
};

} // namespace mio::miodb

#endif // MIO_MIODB_LAZY_COPY_MERGE_H_
