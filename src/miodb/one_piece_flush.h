/**
 * @file
 * One-piece flushing (paper Sec. 4.2): persist an immutable DRAM
 * MemTable into NVM with a single bulk memcpy, then swizzle the skip
 * list's internal pointers by the relocation delta. The alternative
 * node-by-node path (what hierarchical NoveLSM does) is provided for
 * the ablation benchmark.
 */
#ifndef MIO_MIODB_ONE_PIECE_FLUSH_H_
#define MIO_MIODB_ONE_PIECE_FLUSH_H_

#include <memory>

#include "kv/store_stats.h"
#include "lsm/memtable.h"
#include "miodb/pmtable.h"
#include "sim/nvm_device.h"

namespace mio::miodb {

/**
 * Flush @p mem into a new PMTable in @p device.
 *
 * Allocates an NVM arena of the MemTable's capacity, copies the whole
 * arena image with one metered write, fixes internal pointers by the
 * constant delta, and builds the table's bloom filter. Timing is
 * charged to stats->flush_ns / serialization_ns (the serialization
 * component is ~zero by construction -- that is the technique's point).
 *
 * @param bits_per_key bloom budget; geometry is derived from the
 *        MemTable capacity so all flushed tables' filters are mergeable
 * @param table_id age stamp for the resulting PMTable
 */
std::shared_ptr<PMTable>
onePieceFlush(lsm::MemTable *mem, sim::NvmDevice *device,
              StatsCounters *stats, int bits_per_key, uint64_t table_id);

/**
 * Ablation path: copy entries one by one into a fresh NVM skip list
 * (every insert pays a search plus a per-node memcpy into NVM).
 */
std::shared_ptr<PMTable>
nodeByNodeFlush(lsm::MemTable *mem, sim::NvmDevice *device,
                StatsCounters *stats, int bits_per_key, uint64_t table_id);

/** Bloom geometry used for all PMTables of a store. */
BloomFilter makePmtableBloom(size_t memtable_capacity, int bits_per_key);

} // namespace mio::miodb

#endif // MIO_MIODB_ONE_PIECE_FLUSH_H_
