/**
 * @file
 * MioDB: the paper's LSM-based KV store for hybrid DRAM/NVM memory.
 *
 * Write path: WAL append (NVM) -> DRAM MemTable -> one-piece flush to
 * an L0 PMTable -> cascading zero-copy merges through the elastic
 * buffer -> lazy-copy into the data repository (huge NVM skip list,
 * or a leveled SSTable LSM on SSD in hierarchy mode).
 *
 * All maintenance (flush, per-level merges, WAL recycling, scrubbing,
 * and in SSD mode the repository LSM's compactions) runs as typed jobs
 * on one BackgroundScheduler, which arbitrates them by class priority
 * and escalates merge classes under memory pressure.
 *
 * Read path: MemTable -> immutable MemTables -> buffer levels top to
 * bottom (newest table first, bloom filters prune; in-flight merges
 * are queried with the newtable -> insertion mark -> oldtable
 * protocol) -> repository.
 */
#ifndef MIO_MIODB_MIODB_H_
#define MIO_MIODB_MIODB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "kv/kv_store.h"
#include "lsm/memtable.h"
#include "mem/memory_governor.h"
#include "mem/read_cache.h"
#include "miodb/lazy_copy_merge.h"
#include "miodb/level_manager.h"
#include "miodb/options.h"
#include "miodb/recovery_index.h"
#include "miodb/value_log.h"
#include "miodb/zero_copy_merge.h"
#include "sched/background_scheduler.h"
#include "sim/storage_medium.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace mio::miodb {

/**
 * The durable NVM-resident half of a MioDB instance: the elastic
 * buffer's PMTables, any in-flight merge/migration, and the data
 * repository. Real NVM survives power failure; in this emulation the
 * same property is modelled by keeping this state in a shared handle
 * that outlives the store object -- pass the handle to the next open
 * and MioDB resumes interrupted compactions (paper Sec. 4.7) and
 * replays the WAL for the DRAM-buffered remainder.
 */
struct NvmState {
    explicit NvmState(int elastic_levels) : levels(elastic_levels) {}

    LevelManager levels;
    /** SSD-mode only: the medium the repository's SSTables live on. */
    std::unique_ptr<sim::StorageMedium> ssd_medium;
    std::unique_ptr<Repository> repo;  //!< destroyed before the medium
    /**
     * Key-value separation: the NVM value log the index structures'
     * kValuePointer entries dereference into. Created when
     * value_separation_threshold > 0; lives here because pointers in
     * surviving PMTables/SSTables must stay resolvable across
     * close/reopen and crash adoption.
     */
    std::unique_ptr<ValueLog> vlog;
    std::atomic<uint64_t> next_table_id{1};
};

class MioDB : public KVStore
{
  public:
    /**
     * Open a MioDB instance.
     *
     * @param options configuration (Sec. 5 defaults, scaled)
     * @param nvm the emulated NVM module (required)
     * @param ssd simulated SSD; required iff options.use_ssd_repository
     * @param wal_registry external WAL home surviving this object
     *        (enables crash-recovery tests); nullptr for a private one
     * @param state NVM image from a previous (possibly crashed)
     *        instance; nullptr opens a fresh store. Level count must
     *        match options.elastic_levels.
     * @param shared_scheduler an externally-owned maintenance pool
     *        (ShardedMioDB hands every shard the same one); nullptr
     *        builds a private scheduler as before. A shared pool's
     *        owner keeps the worker census, stats sink, crash
     *        callback, and urgency probes: this instance only submits
     *        jobs. The pool must outlive this instance, and after a
     *        crash the owner must shutdown(false) the pool before
     *        destroying it (a frozen pool's running job may still
     *        reference shard memory).
     * @param governor an externally-owned memory governor (ShardedMioDB
     *        shares one across all shards); nullptr builds a private
     *        one from the options. A shared governor's owner runs the
     *        kMemTuner job; this instance only charges budgets.
     * @param shared_cache the machine-wide DRAM read cache when the
     *        governor is shared (shard key spaces are disjoint, so one
     *        cache is safe); nullptr builds a private cache iff
     *        options.read_cache_bytes > 0.
     */
    MioDB(const MioOptions &options, sim::NvmDevice *nvm,
          sim::SsdDevice *ssd = nullptr,
          wal::WalRegistry *wal_registry = nullptr,
          std::shared_ptr<NvmState> state = nullptr,
          sched::BackgroundScheduler *shared_scheduler = nullptr,
          std::shared_ptr<mem::MemoryGovernor> governor = nullptr,
          std::shared_ptr<mem::ReadCache> shared_cache = nullptr);
    ~MioDB() override;

    Status put(const Slice &key, const Slice &value) override;
    Status get(const Slice &key, std::string *value) override;
    Status remove(const Slice &key) override;
    /**
     * Atomic batch: one WAL record covers the whole batch, so after a
     * crash either every op of the batch is recovered or (only if the
     * record itself was torn) none past the tear -- and concurrent
     * readers never observe a partially applied batch ordering
     * younger writes first.
     */
    Status write(const WriteBatch &batch) override;
    Status scan(const Slice &start_key, int count,
                std::vector<std::pair<std::string, std::string>> *out)
        override;
    /**
     * Pin a point-in-time view: the live MemTables, every level's
     * published manifest (one owning acquire per level), and the
     * repository's file version. Writes, flushes, merges, and
     * compactions continue underneath; version reclamation is gated
     * (oldestSnapshotSeq) so everything the view can reach survives
     * until releaseSnapshot.
     */
    Snapshot *getSnapshot() override;
    void releaseSnapshot(Snapshot *snapshot) override;
    Status scanAt(const Snapshot *snapshot, const Slice &start_key,
                  int count,
                  std::vector<std::pair<std::string, std::string>> *out)
        override;
    void waitIdle() override;
    // Gauges are pull-published: refresh the governor's gov_* gauges
    // into its sink (this store's counters, or the facade's shared
    // sink in sharded mode) so every reader sees current charges.
    const StatsCounters &
    stats() const override
    {
        governor_->publishGauges();
        return stats_;
    }
    std::string
    name() const override
    {
        return options_.use_ssd_repository ? "MioDB-SSD" : "MioDB";
    }

    // ---- introspection for tests and benches ----

    const MioOptions &options() const { return options_; }
    LevelManager &levels() { return state_->levels; }
    Repository &repository() { return *state_->repo; }
    /** The durable NVM image (hand to the next open after a crash). */
    std::shared_ptr<NvmState> nvmState() const { return state_; }
    uint64_t currentSequence() const
    {
        return seq_.load(std::memory_order_relaxed);
    }
    /**
     * The version-reclamation bound compactions run under: a merge
     * may only drop a version shadowed by a newer one at or below
     * this sequence. Two components, both required:
     *  - the oldest live snapshot's bound (that snapshot must keep
     *    seeing every version visible at its capture), and
     *  - the committed watermark (visible_seq_), which caps the bound
     *    ANY future snapshot can capture -- without it, a merge that
     *    sampled "no snapshots" could drop a version shadowed only by
     *    a not-yet-committed write, breaking a snapshot registered a
     *    moment later.
     */
    uint64_t oldestSnapshotSeq() const;
    /** NVM bytes referenced by buffer tables (elastic footprint). */
    size_t elasticBufferBytes() const
    {
        return state_->levels.totalArenaBytes();
    }

    /** Multi-line dump of engine state (levels, repo, stats). */
    std::string debugString();

    /**
     * Run one synchronous scrub pass over every PMTable (buffer
     * levels, in-flight merges, migrations) and the data repository,
     * verifying per-entry checksums and quarantining corrupt tables.
     * The periodic scrub job (options.scrub_interval_ms > 0) calls
     * this on its period; tests call it directly for deterministic
     * coverage.
     * @return checksum mismatches found in this pass.
     */
    uint64_t scrubNow();

    /**
     * Simulate a power failure: the scheduler freezes (queued jobs are
     * dropped, workers stop where they are) and the destructor will
     * NOT flush buffered data, leaving the WAL segments in the
     * registry for replay by the next open. A fired failpoint
     * (sim::SimCrash) triggers the same transition.
     */
    void simulateCrash();

    /** The store's maintenance executor (tests/benches introspect). */
    sched::BackgroundScheduler &scheduler() { return *sched_; }

    /** The memory-budget authority (never null after construction). */
    mem::MemoryGovernor &governor() { return *governor_; }
    /** The DRAM read cache; nullptr when read_cache_bytes == 0. */
    mem::ReadCache *readCache() { return read_cache_.get(); }

    /**
     * Drift witness for the crash sweep's post-recovery validation
     * and debug asserts: the governor's internal sum-vs-total
     * invariant always, plus -- when nothing is reshaping the buffer
     * (no busy jobs, no in-flight merge/migration) -- exact equality
     * of each sub-budget charge against its ground truth (buffer
     * arena bytes, cache bytes, value-log segment capacity).
     */
    bool memoryAccountingConsistent() const;

    /** One tuner window (the kMemTuner job body; tests call direct). */
    void memTunerPass();

    /**
     * True while the elastic buffer exceeds its cap or NVM usage sits
     * above the soft watermark -- the condition that escalates merge
     * jobs. Exposed so a shared-scheduler owner can install one
     * aggregate urgency probe spanning every shard.
     */
    bool underMemoryPressure() const;

    /**
     * Called exactly once when this instance transitions to crashed
     * (failpoint, scheduler crash propagation, or simulateCrash). A
     * sharded facade uses it to spread one shard's power failure to
     * the whole machine. Set before any traffic; must not throw.
     */
    void setCrashHook(std::function<void()> hook)
    {
        crash_hook_ = std::move(hook);
    }

    // ---- instant recovery (options.instant_recovery) ----

    /** WAL frames indexed at open but not yet replayed. */
    uint64_t
    recoveryPendingFrames() const
    {
        return recovery_pending_frames_.load(std::memory_order_acquire);
    }
    /** True once every indexed frame has been applied. */
    bool recoveryDrained() const { return recoveryPendingFrames() == 0; }
    /**
     * True while a foreground op is blocked on un-replayed frames --
     * the kWalReplay urgency signal. Exposed so a shared-scheduler
     * owner can install one aggregate probe spanning every shard.
     */
    bool replayUrgent() const;
    /**
     * Test hook: freeze (@p paused) or resume the background replay
     * job, leaving on-demand replay as the only way frames drain.
     * This is what lets tests pin the store in the "serving while
     * recovering" state and compare it against a drained reference.
     */
    void pauseBackgroundReplayForTesting(bool paused);

  private:
    /**
     * One queued write: either a single op (batch == nullptr; key and
     * value alias the caller's slices, which stay valid while the
     * caller blocks in writeImpl) or a whole WriteBatch. Writers park
     * on their own condition variable until a leader commits them.
     */
    struct Writer {
        const WriteBatch *batch = nullptr;
        Slice key;
        Slice value;
        EntryType type = EntryType::kValue;
        size_t op_count = 1;
        size_t payload_bytes = 0;  //!< approximate WAL payload share
        /**
         * GC relocation: value is a pre-encoded kValuePointer to an
         * already-relocated payload, applied only if the key's newest
         * committed entry still equals expected_ptr when the leader
         * commits (re-verified under leadership -- a user write may
         * have raced ahead). Skipped relocations complete with
         * notFound; they are never WAL-logged or applied.
         */
        bool relocation = false;
        ValuePointer expected_ptr;
        /** ok = applied; notFound = superseded (new copy is garbage);
         *  corruption = probe hit damage (liveness unknown). */
        Status relocation_outcome;
        /**
         * Instant recovery: a replay writer carries no ops of its own.
         * When it reaches the queue front, the leader path applies the
         * pending WAL frames its selector matches (see
         * applyReplayWriter) with their original sequence numbers
         * instead of committing a group. kBatch writers come from the
         * background job and bail busy rather than park (the vlog GC
         * relocation rule -- a parked job can deadlock small pools);
         * on-demand kinds park like normal writers.
         */
        ReplayKind replay = ReplayKind::kNone;
        Slice replay_key;  //!< selector key for kKey / kFromKey
        Status status;
        bool done = false;
        std::condition_variable cv;
    };

    /** Flattened view of one op inside a commit group. */
    struct OpRef {
        EntryType type;
        Slice key;
        Slice value;
    };

    /**
     * Queue @p w and block until a leader (possibly @p w itself)
     * commits it. The front writer of writers_ becomes leader, claims
     * followers up to options_.max_group_bytes, reserves a contiguous
     * sequence block, and commits the whole group with one combined
     * WAL record.
     */
    Status writeImpl(Writer *w);
    /** Leader-only: WAL + MemTable apply for a claimed group. */
    Status commitGroup(const std::vector<Writer *> &group,
                       uint64_t base_seq);
    /** A SimCrash reached a thread boundary: freeze the store. */
    void onSimCrash();
    Status validateEntry(const Slice &key, const Slice &value) const;
    /** Throttle writers while the elastic buffer exceeds its cap. */
    void applyBufferCap();
    /**
     * NVM exhaustion backpressure (only when the device has a capacity
     * budget). Above the soft watermark each commit sleeps
     * write_slowdown_micros and migration urgency is boosted; above
     * the hard watermark the leader stalls (bounded by
     * write_stall_timeout_ms) and then fails the group with busy.
     */
    Status applyNvmWatermarks();
    /** True when NVM usage exceeds the soft watermark (boost hint). */
    bool nvmOverSoftWatermark() const;
    /** Wake writers throttled by applyBufferCap (footprint dropped). */
    void notifyCapWaiters();
    /**
     * Swap in a fresh MemTable + WAL segment. Caller is the leader
     * (or holds write_mu_). @p relog, if given, appends records to
     * the NEW segment before the old table becomes flushable — any
     * group remainder must be durable there first, because the old
     * segment (the only full-group record) dies with the old table's
     * flush.
     */
    void rotateMemTable(const std::function<void()> &relog = nullptr);
    std::string walName(uint64_t id) const;
    /** @return busy when the NVM capacity budget denied the frame. */
    Status appendWal(uint64_t seq, EntryType type, const Slice &key,
                     const Slice &value);
    /**
     * Log group ops [from, end) as one combined record whose first op
     * has @p first_seq; single-op spans keep the singleton encoding.
     * @return busy when the NVM capacity budget denied the frame.
     */
    Status appendWalOps(const std::vector<OpRef> &ops, size_t from,
                        uint64_t first_seq);
    void replayWal();
    /**
     * Apply one WAL record's ops with their ORIGINAL sequences.
     * @p skip_superseded (instant recovery) drops any op whose key
     * already has a version at or above the op's sequence: on-demand
     * replay applies frames out of order, so a later frame's version
     * of a key can reach the store (and sink below the MemTable)
     * before an earlier frame replays -- inserting the older op then
     * would break the newest-version-on-top layering reads depend on.
     * Equal sequences are duplicates (a crash mid-recovery re-replays
     * frames on the next open) and are dropped by the same check.
     */
    void replayRecord(const Slice &record, uint64_t *max_seq,
                      bool *relog_failed, bool skip_superseded = false);

    // ---- instant recovery ----

    /**
     * Instant-recovery open: scan the surviving segments' frame
     * digests into recovery_index_ (no value bytes touched), publish
     * the recovered sequence horizon, floor the version-reclamation
     * bound, and disable bottom-level tombstone drops until the
     * directory drains.
     */
    void buildRecoveryIndex();
    /**
     * Block until every pending frame matching @p kind / @p key has
     * been applied: queues a replay writer and lets the leader path
     * replay exactly the covering frames (memoized -- frames already
     * applied by an earlier call are skipped). No-op once drained.
     */
    Status ensureRecovered(ReplayKind kind, const Slice &key);
    /** Leader-only: collect, re-read, and apply @p w's frames. */
    Status applyReplayWriter(Writer *w);
    /** All frames applied: lift the floor, re-enable tombstone
     *  reclamation and vlog GC, stamp recovery_ms_to_drained. */
    void finishReplayDrain();
    /** Ensure a background replay job is queued (token-dedup). */
    void scheduleWalReplay();
    /** Job body: replay batches of replay_batch_frames until drained,
     *  paused, or the writer queue is contended. */
    void walReplayJob();
    /**
     * keep_seq for recovery-time merges: floored to just below the
     * oldest un-replayed frame's first sequence while instant
     * recovery is pending (a replayed op must still find the versions
     * it shadows -- and be shadowed by what superseded it), and
     * kMaxSequence otherwise (the historical behaviour).
     */
    uint64_t recoveryKeepSeq() const;
    /** getSnapshot minus the ensureRecovered(kAll) hook: pin exactly
     *  what is materialized now (scan pins after its own ensure). */
    Snapshot *captureSnapshot();

    // ---- background maintenance (maintenance.cpp) ----

    /** Outcome of one compaction attempt at a level. */
    enum class CompactResult {
        kWorked,      //!< made progress; look again immediately
        kNoWork,      //!< nothing runnable at this level
        kRetryLater,  //!< transient denial (NVM budget); back off
    };

    /** Bind the maintenance executor: adopt @p shared or build one. */
    void startScheduler(sched::BackgroundScheduler *shared);
    /** Worker-pool size implied by options (0 in deterministic mode). */
    int backgroundWorkerCount() const;
    /** Ensure a flush job is queued (token-deduplicated). */
    void scheduleFlush();
    /** Ensure a compaction job for @p level is queued (token-dedup). */
    void scheduleCompaction(int level);
    /** Queue async recycling of a flushed segment's WAL file. */
    void scheduleWalRecycle(uint64_t wal_id);
    /** Schedule every level that may have runnable work. */
    void kickCompaction();
    /** Schedule flush + compactions (waiters' wedge-escape kick). */
    void kickMaintenance();
    /** Job body: drain the immutable queue into L0 PMTables. */
    void flushJob();
    /** Job body: compact @p level until no work or a transient denial. */
    void compactionJob(int level);
    CompactResult compactLevelOnce(int level);
    /** True when @p level has (or may soon have) runnable work. */
    bool levelHasWork(int level) const;
    /** Finish merges/migrations interrupted by a crash (Sec. 4.7). */
    void recoverInterruptedCompactions();

    /**
     * @param corrupt set when the lookup hit a checksum-failing entry
     *        or a quarantined table that could hold @p key; the caller
     *        must answer corruption, never fall through to stale data.
     */
    bool lookupBufferAndRepo(const Slice &key, std::string *value,
                             EntryType *type, uint64_t *seq,
                             bool *corrupt);

    /**
     * Read-cache interaction of one get(): set by findNewestRaw when
     * a probe pointer is passed (get() only -- GC liveness probes and
     * snapshot reads must never be answered from, or fill, the
     * cache).
     */
    struct CacheProbe {
        bool hit = false;      //!< the cache answered (type kValue)
        bool fillable = false; //!< missed; epoch captured for insert()
        uint64_t epoch = 0;
    };

    /**
     * Newest version of @p key across every structure WITHOUT
     * dereferencing value pointers (GC's liveness probe): a
     * kValuePointer hit returns the encoded pointer bytes in
     * @p value. No read-stats bumps. With @p probe set, the read
     * cache is consulted after the MemTable/immutables miss and
     * before the buffer descent (the probe captures the stripe epoch
     * there, closing the fill-vs-invalidate race).
     */
    bool findNewestRaw(const Slice &key, std::string *value,
                       EntryType *type, uint64_t *seq, bool *corrupt,
                       CacheProbe *probe = nullptr);

    // ---- memory governor ----

    /** New MemTable at the governor's current target capacity,
     *  charged to kMemtableDram until the table's last owner drops. */
    std::shared_ptr<lsm::MemTable> makeMemTable(uint64_t seed);
    /** Account buffer-arena bytes (this shard's share + governor). */
    void chargeNvmBuffer(size_t bytes);
    void releaseNvmBuffer(size_t bytes);
    /** This shard's live kNvmBuffer charge (cap/pressure checks). */
    uint64_t
    nvmBufferCharged() const
    {
        return nvm_buffer_bytes_.load(std::memory_order_relaxed);
    }
    /** Every key of @p table dropped from the read cache (run after
     *  the L0 install, before the immutable leaves the read path). */
    void invalidateCacheFor(const lsm::MemTable &table);

    // ---- value log (key-value separation) ----

    /**
     * Merge drop hook: when a dropped version is a kValuePointer,
     * decay the owning segment's live-bytes estimate and kick GC if a
     * segment crossed the trigger ratio.
     */
    void noteDropped(EntryType type, const Slice &value);
    /** Ensure a vlog GC job is queued (token-deduplicated). */
    void scheduleVlogGc();
    /** Job body: process gated unlinks, relocate one victim segment. */
    void vlogGcJob();

    /**
     * Quiescent-state reclamation for merged PMTable chains. Zero-copy
     * merges entangle node graphs across tables, so a reader iterating
     * one table can legitimately walk into nodes whose arenas are
     * co-owned by the final table of the chain. That final table is
     * therefore retired through a graveyard that is only swept once no
     * reader that could have observed it is still in flight.
     */
    class ReadGuard
    {
      public:
        explicit ReadGuard(MioDB *db) : db_(db)
        {
            db_->active_readers_.fetch_add(1,
                                           std::memory_order_acquire);
            // Pairs with the fence in retireToGraveyard(): a retirer
            // that misses this increment is guaranteed to have
            // published its replacement manifest before our first
            // acquireManifest() load (store-buffering resolution), so
            // an immediately-freed manifest is never reachable here.
            std::atomic_thread_fence(std::memory_order_seq_cst);
        }
        ~ReadGuard()
        {
            // acq_rel: the acquire half makes every earlier reader's
            // in-guard loads (their decrements form a release sequence
            // on this counter) happen-before the sweep below, so the
            // last reader out can safely free what they were reading.
            if (db_->active_readers_.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                db_->sweepGraveyard();
            }
        }
        ReadGuard(const ReadGuard &) = delete;
        ReadGuard &operator=(const ReadGuard &) = delete;

      private:
        MioDB *db_;
    };

    void retireTable(std::shared_ptr<PMTable> table);
    /**
     * Defer destruction of a retired object (PMTable chain or level
     * manifest) until no reader that could have observed it is in
     * flight; frees immediately when provably unobserved.
     */
    void retireToGraveyard(std::shared_ptr<const void> retired);
    void sweepGraveyard();

    /**
     * Probe one level's published manifest: summary filter first (one
     * negative probe skips the level), then resident tables newest
     * first, the in-flight merge pair (three-step protocol), and the
     * migrating table -- all via metadata captured at publish time,
     * no locks.
     */
    bool probeLevelManifest(const LevelManifest &m, const Slice &key,
                            uint64_t h1, uint64_t h2,
                            std::string *value, EntryType *type,
                            uint64_t *seq, bool use_bloom,
                            bool *corrupt);

    /**
     * A pinned view (see getSnapshot). All members are owning
     * references: the snapshot stays readable even while background
     * work replaces manifests and compacts files underneath, and its
     * pins are what the graveyard/ReadGuard machinery never sees --
     * release drops the references and normal reclamation resumes.
     */
    class MioSnapshot : public Snapshot
    {
      public:
        uint64_t sequence() const override { return bound; }

        /** Held first so the NVM image outlives every other pin. */
        std::shared_ptr<NvmState> state;
        /** Visibility bound: entries with seq > bound are invisible. */
        uint64_t bound = 0;
        /** Live + immutable MemTables at capture, newest first. */
        std::vector<std::shared_ptr<lsm::MemTable>> mems;
        /** One published manifest per buffer level, top to bottom. */
        std::vector<std::shared_ptr<const LevelManifest>> manifests;
        /** Repository file-version pin (SSD mode; else nullptr). */
        std::shared_ptr<const void> repo_pin;
    };

    MioOptions options_;
    sim::NvmDevice *nvm_;
    sim::SsdDevice *ssd_;
    StatsCounters stats_;

    // Memory governor + read cache. owns_governor_ marks standalone
    // mode (private governor/cache, this instance runs the tuner);
    // shared mode leaves the tuner to the facade. nvm_buffer_bytes_
    // is this shard's slice of the governor's kNvmBuffer charge (the
    // per-shard cap and pressure checks compare against it).
    std::shared_ptr<mem::MemoryGovernor> governor_;
    std::shared_ptr<mem::ReadCache> read_cache_;
    bool owns_governor_ = false;
    uint64_t tuner_job_id_ = 0;
    std::atomic<uint64_t> nvm_buffer_bytes_{0};

    std::unique_ptr<wal::WalRegistry> owned_registry_;
    wal::WalRegistry *registry_;

    // Write state. write_mu_ guards only the writer queue; the leader
    // releases it while appending the group's WAL record and applying
    // MemTable inserts (leadership itself serializes those), so
    // followers can enqueue during the commit -- that window is what
    // lets groups form.
    std::mutex write_mu_;
    std::deque<Writer *> writers_;
    std::shared_ptr<lsm::MemTable> mem_;
    uint64_t mem_wal_id_ = 0;
    uint64_t first_own_wal_id_ = 0;  //!< replay floor (see replayWal)
    std::shared_ptr<wal::LogSegment> mem_wal_;
    std::atomic<uint64_t> seq_{1};

    // Immutable queue (guarded by imm_mu_).
    std::mutex imm_mu_;
    struct Immutable {
        std::shared_ptr<lsm::MemTable> mem;
        uint64_t wal_id;
    };
    std::deque<Immutable> imms_;

    std::shared_ptr<NvmState> state_;

    /**
     * Highest sequence number whose write has fully committed
     * (release-stored by the group leader after the last MemTable
     * insert; acquire-loaded by getSnapshot so a snapshot's bound
     * covers only entries that are already present in some pinned
     * source). Also caps oldestSnapshotSeq -- see that method.
     */
    std::atomic<uint64_t> visible_seq_{0};

    // Snapshot registry: live pins and their bounds (multiset -- two
    // snapshots may share a bound), guarded by snap_mu_. getSnapshot
    // registers the bound BEFORE pinning sources so any merge started
    // afterwards keeps what the snapshot needs.
    mutable std::mutex snap_mu_;
    std::multiset<uint64_t> snap_bounds_;
    std::set<MioSnapshot *> live_snapshots_;

    // Reader epoch tracking + deferred reclamation (see ReadGuard).
    std::atomic<int> active_readers_{0};
    std::mutex grave_mu_;
    std::vector<std::shared_ptr<const void>> graveyard_;

    // Background maintenance: one scheduler runs every job class. The
    // per-class "scheduled" tokens deduplicate submissions -- at most
    // one flush job and one compaction job per level is ever queued or
    // running, preserving the old dedicated-thread serialization per
    // work stream while letting the pool interleave streams.
    // owned_sched_ is set only in standalone mode (mirrors the
    // owned_registry_/registry_ pattern); in shared mode sched_ points
    // at the facade's pool.
    sched::BackgroundScheduler *sched_ = nullptr;
    std::unique_ptr<sched::BackgroundScheduler> owned_sched_;
    std::function<void()> crash_hook_;
    std::atomic<bool> flush_scheduled_{false};
    std::unique_ptr<std::atomic<bool>[]> compact_scheduled_;
    std::atomic<bool> vlog_gc_scheduled_{false};
    /**
     * GC jobs write through the normal commit path, so none may be
     * submitted until the constructor has the WAL/MemTable machinery
     * up (recovery's merge drop hooks fire well before that).
     */
    std::atomic<bool> vlog_gc_enabled_{false};
    /**
     * Segments whose live records were all relocated, awaiting the
     * snapshot gate: the segment is only unlinked once every snapshot
     * captured before the relocations committed (bound < gc_seq) has
     * been released -- such a snapshot may still resolve the old
     * pointers. Guarded by vlog_gc_mu_.
     */
    struct PendingUnlink {
        uint64_t segment_id;
        uint64_t gc_seq;
    };
    std::mutex vlog_gc_mu_;
    std::vector<PendingUnlink> vlog_pending_unlinks_;
    uint64_t scrub_job_id_ = 0;  //!< periodic registration handle
    std::atomic<bool> shutting_down_{false};
    std::atomic<bool> crashed_{false};

    // ---- instant recovery state ----

    /**
     * The frame directory built at open when instant_recovery is on
     * and old segments survived; reset (null) once every frame has
     * been applied. All access is serialized by recovery_mu_; the
     * pending-frame count is mirrored into recovery_pending_frames_
     * so read fast paths never take the mutex when recovery is over.
     */
    mutable std::mutex recovery_mu_;
    std::unique_ptr<RecoveryIndex> recovery_index_;
    std::atomic<uint64_t> recovery_pending_frames_{0};
    /**
     * Version-reclamation floor while frames are pending: one below
     * the oldest un-replayed first sequence, folded into
     * oldestSnapshotSeq and recoveryKeepSeq so no merge drops a
     * version (or a tombstone) that an un-replayed frame's ops must
     * still order against. kMaxSequence once drained (no effect).
     */
    std::atomic<uint64_t> recovery_keep_floor_{kMaxSequence};
    std::atomic<bool> replay_scheduled_{false};
    /** Test pause hook; doubles as the destructor's quiesce latch. */
    std::atomic<bool> replay_paused_{false};
    /** A foreground op hit un-replayed frames; cleared per batch. */
    std::atomic<bool> replay_urgent_{false};
    uint64_t open_start_ns_ = 0;  //!< recovery_ms_* are open-relative
    /**
     * Set while the flush job cannot materialize a PMTable because
     * the NVM budget is exhausted; lets the destructor stop waiting
     * for the immutable queue to drain (the data stays durable in its
     * WAL segments and replays on the next open).
     */
    std::atomic<bool> flush_blocked_{false};
};

} // namespace mio::miodb

#endif // MIO_MIODB_MIODB_H_
