/**
 * @file
 * Shared low-level helpers for the zero-copy and lazy-copy compaction
 * paths: duplicate collection and multi-level unlinking around an
 * insertion splice.
 */
#ifndef MIO_MIODB_SKIPLIST_MERGE_UTIL_H_
#define MIO_MIODB_SKIPLIST_MERGE_UTIL_H_

#include <cstdint>
#include <vector>

#include "skiplist/skiplist.h"

namespace mio::miodb {

/**
 * Collect the consecutive nodes with key == @p key starting at
 * @p start (level-0 order keeps same-key versions contiguous).
 */
inline std::vector<SkipList::Node *>
collectDuplicates(SkipList::Node *start, const Slice &key)
{
    std::vector<SkipList::Node *> dups;
    for (SkipList::Node *d = start; d != nullptr && d->key() == key;
         d = d->nextRelaxed(0)) {
        dups.push_back(d);
    }
    return dups;
}

/**
 * Unlink @p dups (older versions of one key) from @p list.
 *
 * @param inserted the newly linked winning node, or nullptr when the
 *        winner is not kept (tombstone hitting the bottom level)
 * @param splice predecessors of the insert position
 * @return number of pointer stores performed (for NVM metering)
 */
inline size_t
unlinkDuplicates(SkipList *list, SkipList::Node *inserted,
                 SkipList::Splice *splice,
                 const std::vector<SkipList::Node *> &dups)
{
    if (dups.empty())
        return 0;
    size_t stores = 0;
    auto is_dup = [&](SkipList::Node *p) {
        for (SkipList::Node *d : dups) {
            if (d == p)
                return true;
        }
        return false;
    };
    int inserted_height = inserted ? inserted->height : 0;
    for (int level = 0; level < list->maxHeight(); level++) {
        SkipList::Node *p = (level < inserted_height)
                                ? inserted
                                : splice->prev[level];
        while (true) {
            SkipList::Node *nxt = p->next(level);
            if (nxt == nullptr || !is_dup(nxt))
                break;
            p->setNext(level, nxt->nextRelaxed(level));
            stores++;
        }
    }
    list->bumpEntryCount(-static_cast<int64_t>(dups.size()));
    return stores;
}

} // namespace mio::miodb

#endif // MIO_MIODB_SKIPLIST_MERGE_UTIL_H_
