/**
 * @file
 * Shared low-level helpers for the zero-copy and lazy-copy compaction
 * paths: duplicate collection and multi-level unlinking around an
 * insertion splice.
 */
#ifndef MIO_MIODB_SKIPLIST_MERGE_UTIL_H_
#define MIO_MIODB_SKIPLIST_MERGE_UTIL_H_

#include <cstdint>
#include <vector>

#include "skiplist/skiplist.h"

namespace mio::miodb {

/**
 * Collect the consecutive nodes with key == @p key starting at
 * @p start (level-0 order keeps same-key versions contiguous).
 */
inline std::vector<SkipList::Node *>
collectDuplicates(SkipList::Node *start, const Slice &key)
{
    std::vector<SkipList::Node *> dups;
    for (SkipList::Node *d = start; d != nullptr && d->key() == key;
         d = d->nextRelaxed(0)) {
        dups.push_back(d);
    }
    return dups;
}

/**
 * Unlink @p dups (older versions of one key) from @p list.
 *
 * @param inserted the newly linked winning node, or nullptr when the
 *        winner is not kept (tombstone hitting the bottom level)
 * @param splice predecessors of the insert position
 * @return number of pointer stores performed (for NVM metering)
 */
inline size_t
unlinkDuplicates(SkipList *list, SkipList::Node *inserted,
                 SkipList::Splice *splice,
                 const std::vector<SkipList::Node *> &dups)
{
    if (dups.empty())
        return 0;
    size_t stores = 0;
    auto is_dup = [&](SkipList::Node *p) {
        for (SkipList::Node *d : dups) {
            if (d == p)
                return true;
        }
        return false;
    };
    int inserted_height = inserted ? inserted->height : 0;
    for (int level = 0; level < list->maxHeight(); level++) {
        SkipList::Node *p = (level < inserted_height)
                                ? inserted
                                : splice->prev[level];
        while (true) {
            SkipList::Node *nxt = p->next(level);
            if (nxt == nullptr || !is_dup(nxt))
                break;
            p->setNext(level, nxt->nextRelaxed(level));
            stores++;
        }
    }
    list->bumpEntryCount(-static_cast<int64_t>(dups.size()));
    return stores;
}

/**
 * Advance @p splice forward past every same-key node newer than
 * @p seq, starting from @p succ (the first same-key candidate).
 * Positions the splice so a node with (key, seq) links in internal-key
 * order (key asc, seq desc) below its newer siblings.
 * @return the first node at or after the insert position.
 */
inline SkipList::Node *
advanceSpliceOverNewer(const Slice &key, uint64_t seq,
                       SkipList::Splice *splice, SkipList::Node *succ)
{
    while (succ != nullptr && succ->key() == key && succ->seq > seq) {
        for (int level = 0; level < succ->height; level++)
            splice->prev[level] = succ;
        succ = succ->next(0);
    }
    return succ;
}

/**
 * Snapshot-aware drop rule: a version is reclaimable iff a newer
 * version of the same key with seq <= @p keep_seq stays linked -- that
 * newer version shadows it for every snapshot at or above the oldest
 * pinned bound (and for all live reads). Walk the same-key run
 * newest-first from @p newest and return the shadowed versions.
 * With keep_seq == kMaxSequence this degenerates to "everything but
 * the newest", the store's historical behaviour.
 *
 * @param exclude a node never added to the drop set (the version the
 *        caller is holding in hand), or nullptr.
 */
inline std::vector<SkipList::Node *>
shadowedVersions(SkipList::Node *newest, const Slice &key,
                 uint64_t keep_seq, const SkipList::Node *exclude = nullptr)
{
    std::vector<SkipList::Node *> drop;
    bool shadowed = false;
    for (SkipList::Node *d = newest; d != nullptr && d->key() == key;
         d = d->nextRelaxed(0)) {
        if (shadowed && d != exclude)
            drop.push_back(d);
        if (d->seq <= keep_seq)
            shadowed = true;
    }
    return drop;
}

/**
 * Unlink @p drop (a subset of one key's version run) from @p list,
 * stepping over the same-key versions that stay linked. Unlike
 * unlinkDuplicates this tolerates kept versions interleaved before the
 * dropped run (snapshot-gated merges keep a prefix of versions).
 *
 * @param splice predecessors strictly before the key's version run
 * @return number of pointer stores performed (for NVM metering)
 */
inline size_t
unlinkShadowed(SkipList *list, const Slice &key, SkipList::Splice *splice,
               const std::vector<SkipList::Node *> &drop)
{
    if (drop.empty())
        return 0;
    size_t stores = 0;
    auto is_drop = [&](SkipList::Node *p) {
        for (SkipList::Node *d : drop) {
            if (d == p)
                return true;
        }
        return false;
    };
    for (int level = 0; level < list->maxHeight(); level++) {
        SkipList::Node *p = splice->prev[level];
        while (true) {
            SkipList::Node *nxt = p->next(level);
            if (nxt == nullptr)
                break;
            if (is_drop(nxt)) {
                p->setNext(level, nxt->nextRelaxed(level));
                stores++;
            } else if (nxt->key() == key) {
                p = nxt;  // a version that stays linked: step over
            } else {
                break;
            }
        }
    }
    list->bumpEntryCount(-static_cast<int64_t>(drop.size()));
    return stores;
}

} // namespace mio::miodb

#endif // MIO_MIODB_SKIPLIST_MERGE_UTIL_H_
