#include "miodb/lazy_copy_merge.h"

#include "lsm/iterator.h"
#include "miodb/skiplist_merge_util.h"
#include "sim/failpoint.h"
#include "util/clock.h"

namespace mio::miodb {

namespace {

/** Iterator over nothing (repository whose arena never materialized). */
class EmptyIterator : public lsm::KVIterator
{
  public:
    bool valid() const override { return false; }
    void seekToFirst() override {}
    void seek(const Slice &) override {}
    void next() override {}
    Slice key() const override { return Slice(); }
    Slice value() const override { return Slice(); }
};

/** Build a skip-list head node inside a growable NVM arena.
 *  @return nullptr when the NVM capacity budget denies the chunk. */
SkipList::Node *
makeHeadIn(ChunkedNvmArena *arena)
{
    size_t bytes = sizeof(SkipList::Node) +
                   SkipList::kMaxHeight * sizeof(std::atomic<void *>);
    auto *head = reinterpret_cast<SkipList::Node *>(arena->allocate(bytes));
    if (head == nullptr)
        return nullptr;
    head->seq = 0;
    head->prefix = 0;
    head->key_len = 0;
    head->value_len = 0;
    head->height = SkipList::kMaxHeight;
    head->type = static_cast<uint8_t>(EntryType::kValue);
    head->reserved = 0;
    head->checksum =
        SkipList::entryChecksum(Slice(), 0, EntryType::kValue, Slice());
    for (int i = 0; i < SkipList::kMaxHeight; i++)
        head->setNextRelaxed(i, nullptr);
    return head;
}

} // namespace

PmRepository::PmRepository(sim::NvmDevice *device, StatsCounters *stats)
    : device_(device), stats_(stats), arena_(device)
{
    // Under an exhausted NVM budget the head cannot be built yet;
    // mergeTable retries lazily (reads just miss meanwhile).
    if (SkipList::Node *head = makeHeadIn(&arena_)) {
        list_ = std::make_unique<SkipList>(head, 0,
                                           /*rng_seed=*/0x4e564d21);
    }
}

Status
PmRepository::mergeTable(PMTable *src)
{
    ScopedTimer timer(&stats_->compaction_ns);
    if (list_ == nullptr) {
        SkipList::Node *head = makeHeadIn(&arena_);
        if (head == nullptr)
            return Status::busy("repo: nvm capacity exhausted");
        list_ = std::make_unique<SkipList>(head, 0,
                                           /*rng_seed=*/0x4e564d21);
    }

    size_t pointer_stores = 0;
    std::string last_key;
    bool has_last = false;

    for (SkipList::Node *n = src->list().first(); n != nullptr;
         n = n->nextRelaxed(0)) {
        // Publishing is idempotent per (key, seq): a crashed merge is
        // simply re-run from the surviving source table.
        MIO_FAILPOINT("lcm.publish_node");
        // Level-0 order is (key asc, seq desc): the first occurrence
        // of a key is its newest version; skip the rest.
        if (has_last && n->key() == Slice(last_key))
            continue;
        last_key = n->key().toString();
        has_last = true;

        device_->chargeRandomReads(
            sim::skipDescentDepth(list_->entryCount()));
        SkipList::Splice splice;
        SkipList::Node *succ =
            list_->findGreaterOrEqual(n->key(), &splice);
        auto dups = (succ != nullptr && succ->key() == n->key())
                        ? collectDuplicates(succ, n->key())
                        : std::vector<SkipList::Node *>{};

        if (n->entryType() == EntryType::kDeletion) {
            // Nothing lives below the repository: the tombstone both
            // deletes the old version and is itself dropped.
            pointer_stores +=
                unlinkDuplicates(list_.get(), nullptr, &splice, dups);
            for (SkipList::Node *d : dups)
                garbage_bytes_ += d->allocationSize();
            continue;
        }

        SkipList::Node *copy = SkipList::makeNode(
            &arena_, n->key(), n->seq, n->entryType(), n->value(),
            list_->randomHeight());
        if (copy == nullptr) {
            // NVM budget exhausted mid-merge. Everything copied so
            // far is durably linked; the caller retries the whole
            // table later and idempotence skips those entries.
            if (pointer_stores > 0) {
                device_->chargeWrite(pointer_stores * sizeof(void *));
                stats_->storage_bytes_written.fetch_add(
                    pointer_stores * sizeof(void *),
                    std::memory_order_relaxed);
            }
            return Status::busy("repo: nvm capacity exhausted");
        }
        stats_->storage_bytes_written.fetch_add(
            copy->allocationSize(), std::memory_order_relaxed);
        list_->linkNode(copy, &splice);
        pointer_stores += copy->height;
        pointer_stores +=
            unlinkDuplicates(list_.get(), copy, &splice, dups);
        for (SkipList::Node *d : dups)
            garbage_bytes_ += d->allocationSize();
    }

    if (pointer_stores > 0) {
        device_->chargeWrite(pointer_stores * sizeof(void *));
        stats_->storage_bytes_written.fetch_add(
            pointer_stores * sizeof(void *), std::memory_order_relaxed);
    }
    stats_->lazy_copy_merges.fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
}

bool
PmRepository::get(const Slice &key, std::string *value, EntryType *type,
                  uint64_t *seq, bool verify, bool *corrupt) const
{
    if (list_ == nullptr)
        return false;
    device_->chargeRandomReads(
        sim::skipDescentDepth(list_->entryCount()));
    return list_->get(key, value, type, seq, verify, corrupt);
}

std::unique_ptr<lsm::KVIterator>
PmRepository::newIterator() const
{
    if (list_ == nullptr)
        return std::make_unique<EmptyIterator>();
    return std::make_unique<lsm::SkipListIterator>(list_.get());
}

Repository::ScrubReport
PmRepository::scrub()
{
    // The repository is one huge skip list without table granularity:
    // quarantining would take the whole store offline, so scrubbing
    // only reports -- reads running with verify_read_checksums answer
    // corruption for the damaged entries themselves.
    ScrubReport report;
    if (list_ == nullptr)
        return report;
    for (const SkipList::Node *n = list_->first(); n != nullptr;
         n = n->next(0)) {
        report.bytes +=
            sizeof(SkipList::Node) + n->key_len + n->value_len;
        if (!n->checksumOk())
            report.corruptions++;
    }
    device_->chargeRead(report.bytes);
    return report;
}

SsdRepository::SsdRepository(const lsm::LsmOptions &options,
                             sim::StorageMedium *medium,
                             StatsCounters *stats,
                             sched::BackgroundScheduler *sched)
    : lsm_(options, medium, stats, "mio-ssd", sched), stats_(stats)
{}

Status
SsdRepository::mergeTable(PMTable *src)
{
    lsm::SkipListIterator iter(&src->list());
    Status s = lsm_.flushToL0(&iter);
    if (s.isOk())
        stats_->lazy_copy_merges.fetch_add(1, std::memory_order_relaxed);
    return s;
}

bool
SsdRepository::get(const Slice &key, std::string *value, EntryType *type,
                   uint64_t *seq, bool verify, bool *corrupt) const
{
    (void)verify;  // SSTable blobs carry their own body checksums
    return lsm_.get(key, value, type, seq, corrupt);
}

Repository::ScrubReport
SsdRepository::scrub()
{
    ScrubReport report;
    lsm_.scrubTables(&report.bytes, &report.corruptions,
                     &report.quarantined);
    return report;
}

std::unique_ptr<lsm::KVIterator>
SsdRepository::newIterator() const
{
    return lsm_.newIterator();
}

uint64_t
SsdRepository::entryCount() const
{
    return lsm_.versions().totalEntries();
}

} // namespace mio::miodb
