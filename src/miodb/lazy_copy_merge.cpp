#include "miodb/lazy_copy_merge.h"

#include "lsm/iterator.h"
#include "miodb/skiplist_merge_util.h"
#include "sim/failpoint.h"
#include "util/clock.h"

namespace mio::miodb {

namespace {

/** Iterator over nothing (repository whose arena never materialized). */
class EmptyIterator : public lsm::KVIterator
{
  public:
    bool valid() const override { return false; }
    void seekToFirst() override {}
    void seek(const Slice &) override {}
    void next() override {}
    Slice key() const override { return Slice(); }
    Slice value() const override { return Slice(); }
};

/** Build a skip-list head node inside a growable NVM arena.
 *  @return nullptr when the NVM capacity budget denies the chunk. */
SkipList::Node *
makeHeadIn(ChunkedNvmArena *arena)
{
    size_t bytes = sizeof(SkipList::Node) +
                   SkipList::kMaxHeight * sizeof(std::atomic<void *>);
    auto *head = reinterpret_cast<SkipList::Node *>(arena->allocate(bytes));
    if (head == nullptr)
        return nullptr;
    head->seq = 0;
    head->prefix = 0;
    head->key_len = 0;
    head->value_len = 0;
    head->height = SkipList::kMaxHeight;
    head->type = static_cast<uint8_t>(EntryType::kValue);
    head->reserved = 0;
    head->checksum =
        SkipList::entryChecksum(Slice(), 0, EntryType::kValue, Slice());
    for (int i = 0; i < SkipList::kMaxHeight; i++)
        head->setNextRelaxed(i, nullptr);
    return head;
}

} // namespace

PmRepository::PmRepository(sim::NvmDevice *device, StatsCounters *stats)
    : device_(device), stats_(stats), arena_(device)
{
    // Under an exhausted NVM budget the head cannot be built yet;
    // mergeTable retries lazily (reads just miss meanwhile).
    if (SkipList::Node *head = makeHeadIn(&arena_)) {
        list_ = std::make_unique<SkipList>(head, 0,
                                           /*rng_seed=*/0x4e564d21);
    }
}

Status
PmRepository::mergeTable(PMTable *src, uint64_t keep_seq)
{
    ScopedTimer timer(&stats_->compaction_ns);
    if (list_ == nullptr) {
        SkipList::Node *head = makeHeadIn(&arena_);
        if (head == nullptr)
            return Status::busy("repo: nvm capacity exhausted");
        list_ = std::make_unique<SkipList>(head, 0,
                                           /*rng_seed=*/0x4e564d21);
    }

    size_t pointer_stores = 0;

    auto flush_charges = [&]() {
        if (pointer_stores > 0) {
            device_->chargeWrite(pointer_stores * sizeof(void *));
            stats_->storage_bytes_written.fetch_add(
                pointer_stores * sizeof(void *),
                std::memory_order_relaxed);
            pointer_stores = 0;
        }
    };

    SkipList::Node *n = src->list().first();
    while (n != nullptr) {
        // Gather this key's whole version run (level-0 order keeps
        // same-key versions contiguous, newest first).
        Slice key = n->key();
        std::vector<SkipList::Node *> run;
        for (SkipList::Node *v = n; v != nullptr && v->key() == key;
             v = v->nextRelaxed(0))
            run.push_back(v);
        n = run.back()->nextRelaxed(0);

        device_->chargeRandomReads(
            sim::skipDescentDepth(list_->entryCount()));
        SkipList::Splice splice;
        SkipList::Node *succ = list_->findGreaterOrEqual(key, &splice);

        // Copy in the run's snapshot-visible prefix: every version
        // down to (and including) the first with seq <= keep_seq --
        // everything below that is shadowed for all live snapshots. A
        // tombstone above keep_seq is stored so newer reads see the
        // deletion while a pinned snapshot still reaches the value
        // below it; a tombstone at or below keep_seq keeps today's
        // delete-and-drop (nothing lives below the repository).
        // Publishing is idempotent per (key, seq): a crashed or
        // budget-bounced merge re-runs and reuses the copies that
        // already landed.
        bool shadowed = false;
        for (SkipList::Node *v : run) {
            MIO_FAILPOINT("lcm.publish_node");
            if (shadowed) {
                // Shadowed for every live snapshot: never copied in,
                // reclaimed with the source arena.
                if (drop_notify_)
                    drop_notify_(v->entryType(), v->value());
                continue;
            }
            bool shadows_rest = v->seq <= keep_seq;
            if (shadows_rest)
                shadowed = true;
            if (v->entryType() == EntryType::kDeletion && shadows_rest)
                continue;  // deletes below, itself dropped

            succ = advanceSpliceOverNewer(key, v->seq, &splice, succ);
            if (succ != nullptr && succ->key() == key &&
                succ->seq == v->seq) {
                // Already durably copied by an earlier attempt: keep
                // that copy and step past it.
                for (int level = 0; level < succ->height; level++)
                    splice.prev[level] = succ;
                succ = succ->next(0);
                continue;
            }

            SkipList::Node *copy = SkipList::makeNode(
                &arena_, key, v->seq, v->entryType(), v->value(),
                list_->randomHeight());
            if (copy == nullptr) {
                // NVM budget exhausted mid-merge. Everything copied
                // so far is durably linked; the caller retries the
                // whole table later and idempotence skips those
                // entries.
                flush_charges();
                return Status::busy("repo: nvm capacity exhausted");
            }
            stats_->storage_bytes_written.fetch_add(
                copy->allocationSize(), std::memory_order_relaxed);
            list_->linkNode(copy, &splice);
            pointer_stores += copy->height;
            for (int level = 0; level < copy->height; level++)
                splice.prev[level] = copy;
        }

        // Reclaim the repository versions the copied-in run shadows;
        // `succ` now sits on the first same-key node older than every
        // copy, so the shadow walk continues seamlessly from the run.
        std::vector<SkipList::Node *> drop;
        for (SkipList::Node *d = succ;
             d != nullptr && d->key() == key; d = d->nextRelaxed(0)) {
            if (shadowed)
                drop.push_back(d);
            if (d->seq <= keep_seq)
                shadowed = true;
        }
        if (drop_notify_) {
            for (SkipList::Node *d : drop)
                drop_notify_(d->entryType(), d->value());
        }
        pointer_stores +=
            unlinkShadowed(list_.get(), key, &splice, drop);
        for (SkipList::Node *d : drop)
            garbage_bytes_ += d->allocationSize();
    }

    if (pointer_stores > 0) {
        device_->chargeWrite(pointer_stores * sizeof(void *));
        stats_->storage_bytes_written.fetch_add(
            pointer_stores * sizeof(void *), std::memory_order_relaxed);
    }
    stats_->lazy_copy_merges.fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
}

bool
PmRepository::get(const Slice &key, std::string *value, EntryType *type,
                  uint64_t *seq, bool verify, bool *corrupt) const
{
    if (list_ == nullptr)
        return false;
    device_->chargeRandomReads(
        sim::skipDescentDepth(list_->entryCount()));
    return list_->get(key, value, type, seq, verify, corrupt);
}

std::unique_ptr<lsm::KVIterator>
PmRepository::newIterator() const
{
    if (list_ == nullptr)
        return std::make_unique<EmptyIterator>();
    return std::make_unique<lsm::SkipListIterator>(list_.get());
}

std::unique_ptr<lsm::KVIterator>
PmRepository::newSnapshotIterator(const std::shared_ptr<const void> &pin,
                                  bool verify) const
{
    // No pin needed: pinned versions stay linked in place (lazy-copy
    // merges gate their reclamation on the oldest snapshot bound).
    (void)pin;
    if (list_ == nullptr)
        return std::make_unique<EmptyIterator>();
    return std::make_unique<lsm::SkipListIterator>(list_.get(), verify);
}

Repository::ScrubReport
PmRepository::scrub()
{
    // The repository is one huge skip list without table granularity:
    // quarantining would take the whole store offline, so scrubbing
    // only reports -- reads running with verify_read_checksums answer
    // corruption for the damaged entries themselves.
    ScrubReport report;
    if (list_ == nullptr)
        return report;
    for (const SkipList::Node *n = list_->first(); n != nullptr;
         n = n->next(0)) {
        report.bytes +=
            sizeof(SkipList::Node) + n->key_len + n->value_len;
        if (!n->checksumOk())
            report.corruptions++;
    }
    device_->chargeRead(report.bytes);
    return report;
}

SsdRepository::SsdRepository(const lsm::LsmOptions &options,
                             sim::StorageMedium *medium,
                             StatsCounters *stats,
                             sched::BackgroundScheduler *sched)
    : lsm_(options, medium, stats, "mio-ssd", sched), stats_(stats)
{}

Status
SsdRepository::mergeTable(PMTable *src, uint64_t keep_seq)
{
    // The SSD tier needs no seq gating: a pinned snapshot holds the
    // migrating PMTable itself (migration never mutates its source)
    // and any pinned SSTable version keeps its files alive, so the
    // newest-version collapse in the table writer loses nothing a
    // snapshot can still reach.
    (void)keep_seq;
    lsm::SkipListIterator iter(&src->list());
    Status s = lsm_.flushToL0(&iter);
    if (s.isOk())
        stats_->lazy_copy_merges.fetch_add(1, std::memory_order_relaxed);
    return s;
}

bool
SsdRepository::get(const Slice &key, std::string *value, EntryType *type,
                   uint64_t *seq, bool verify, bool *corrupt) const
{
    (void)verify;  // SSTable blobs carry their own body checksums
    return lsm_.get(key, value, type, seq, corrupt);
}

Repository::ScrubReport
SsdRepository::scrub()
{
    ScrubReport report;
    lsm_.scrubTables(&report.bytes, &report.corruptions,
                     &report.quarantined);
    return report;
}

std::unique_ptr<lsm::KVIterator>
SsdRepository::newIterator() const
{
    return lsm_.newIterator();
}

std::shared_ptr<const void>
SsdRepository::pinVersion() const
{
    return std::make_shared<lsm::LsmTree::VersionPin>(lsm_.pinVersion());
}

std::unique_ptr<lsm::KVIterator>
SsdRepository::newSnapshotIterator(
    const std::shared_ptr<const void> &pin, bool verify) const
{
    (void)verify;  // SSTable blocks carry their own checksums
    if (pin == nullptr)
        return lsm_.newIterator();
    auto files =
        std::static_pointer_cast<const lsm::LsmTree::VersionPin>(pin);
    return lsm_.newIterator(*files);
}

bool
SsdRepository::snapshotCorrupt(const std::shared_ptr<const void> &pin,
                               const Slice &user_key) const
{
    if (pin == nullptr)
        return false;
    auto files =
        std::static_pointer_cast<const lsm::LsmTree::VersionPin>(pin);
    for (const auto &level : *files) {
        for (const auto &f : level) {
            if (!f->quarantined.load(std::memory_order_acquire))
                continue;
            if (user_key.compare(extractUserKey(Slice(f->smallest))) >=
                    0 &&
                user_key.compare(extractUserKey(Slice(f->largest))) <= 0) {
                return true;
            }
        }
    }
    return false;
}

uint64_t
SsdRepository::entryCount() const
{
    return lsm_.versions().totalEntries();
}

} // namespace mio::miodb
