/**
 * @file
 * MioDB's background maintenance half: every job body (flush,
 * zero-copy merges, lazy-copy migration, WAL recycling, scrubbing),
 * the scheduling glue that keeps the unified BackgroundScheduler
 * primed, and the backpressure/wait paths that park on it. The
 * API/read/write paths live in miodb.cpp.
 *
 * Scheduling invariant: at most one flush job and one compaction job
 * per level is ever queued or running, enforced by the "scheduled"
 * tokens. Each job drains its work stream in a loop, releases its
 * token, and then re-checks for work that arrived during the release
 * window -- so no wakeup is ever lost and no stream ever runs
 * concurrently with itself (the old dedicated-thread serialization,
 * kept under a shared pool).
 */
#include "miodb/miodb.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "miodb/one_piece_flush.h"
#include "sim/failpoint.h"
#include "util/clock.h"

namespace mio::miodb {

int
MioDB::backgroundWorkerCount() const
{
    if (options_.deterministic_background)
        return 0;
    if (options_.background_workers > 0)
        return options_.background_workers;
    // Auto: mirror the old dedicated-thread census -- one flusher,
    // one compactor per level (or one total), a scrubber slot when
    // periodic scrubbing is on, plus the SSD tier's compaction pool
    // in hierarchy mode.
    int n = 1;
    if (options_.auto_compaction) {
        n += options_.parallel_compaction ? options_.elastic_levels
                                          : 1;
    }
    if (options_.scrub_interval_ms > 0)
        n += 1;
    if (options_.use_ssd_repository)
        n += std::max(1, options_.ssd_lsm.compaction_threads);
    return n;
}

void
MioDB::startScheduler(sched::BackgroundScheduler *shared)
{
    if (shared != nullptr) {
        // Facade-owned pool: the worker census, stats sink, crash
        // callback, and urgency probes belong to the owner (only one
        // probe per class exists pool-wide, and it must aggregate
        // across every shard, not capture whichever shard bound last).
        sched_ = shared;
    } else {
        sched::BackgroundScheduler::Options so;
        so.deterministic = options_.deterministic_background;
        so.num_workers = backgroundWorkerCount();
        so.stats = &stats_;
        so.on_crash = [this] { onSimCrash(); };
        owned_sched_ = std::make_unique<sched::BackgroundScheduler>(so);
        sched_ = owned_sched_.get();
        // Memory pressure escalates the merge classes ahead of
        // everything else: movement toward the repository is what
        // actually frees NVM bytes (and shrinks the elastic buffer
        // under its cap).
        auto pressed = [this] { return underMemoryPressure(); };
        sched_->setUrgencyProbe(sched::JobClass::kLazyCopyMerge,
                                pressed);
        sched_->setUrgencyProbe(sched::JobClass::kZeroCopyMerge,
                                pressed);
    }
    compact_scheduled_ =
        std::make_unique<std::atomic<bool>[]>(options_.elastic_levels);
    for (int i = 0; i < options_.elastic_levels; i++)
        compact_scheduled_[i].store(false);
}

bool
MioDB::underMemoryPressure() const
{
    return nvmOverSoftWatermark() ||
           (options_.nvm_buffer_cap_bytes != 0 &&
            state_->levels.totalArenaBytes() >
                options_.nvm_buffer_cap_bytes);
}

void
MioDB::scheduleFlush()
{
    if (sched_ == nullptr || crashed_.load())
        return;
    if (flush_scheduled_.exchange(true))
        return;  // the queued/running flush job will observe the work
    sched_->submit(
        sched::JobClass::kFlush, [this] { flushJob(); },
        [this] { flush_scheduled_.store(false); });
}

void
MioDB::flushJob()
{
    while (!shutting_down_.load() && !crashed_.load()) {
        Immutable imm;
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            if (imms_.empty())
                break;
            imm = imms_.front();
        }
        uint64_t table_id = state_->next_table_id.fetch_add(1);
        std::shared_ptr<PMTable> table;
        if (options_.one_piece_flush) {
            table = onePieceFlush(imm.mem.get(), nvm_, &stats_,
                                  options_.bits_per_key, table_id);
        } else {
            table = nodeByNodeFlush(imm.mem.get(), nvm_, &stats_,
                                    options_.bits_per_key, table_id);
        }
        if (table == nullptr) {
            // NVM budget exhausted: leave the imm queued (its WAL
            // segment keeps it durable), nudge migration to free
            // space, and retry after a short backoff. The retry keeps
            // the flush token so no duplicate flush job can appear;
            // its on_drop releases the token if a freeze/shutdown
            // discards the retry.
            flush_blocked_.store(true);
            sched_->notifyEvent();
            kickCompaction();
            sched_->submitAfter(
                sched::JobClass::kFlush, 10, [this] { flushJob(); },
                [this] {
                    flush_scheduled_.store(false);
                    sched_->notifyEvent();
                });
            return;
        }
        flush_blocked_.store(false);
        stats_.flush_count.fetch_add(1, std::memory_order_relaxed);
        // A crash before the push loses the PMTable image but the WAL
        // segment survives (it is recycled only after the push);
        // after the push, replay of the same segment merely
        // re-inserts entries that sequence-number dedup discards.
        MIO_FAILPOINT("flush.before_publish");
        state_->levels.level(0).push(std::move(table));
        MIO_FAILPOINT("flush.after_publish");
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            if (!imms_.empty())
                imms_.pop_front();
        }
        if (options_.enable_wal)
            scheduleWalRecycle(imm.wal_id);
        sched_->notifyEvent();
        notifyCapWaiters();
        scheduleCompaction(0);
    }
    // Release the token, then close the submit/observe race: an imm
    // pushed after the emptiness check above (its scheduleFlush lost
    // to our token) reschedules here.
    flush_scheduled_.store(false);
    sched_->notifyEvent();
    bool more;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        more = !imms_.empty();
    }
    if (more && !shutting_down_.load())
        scheduleFlush();
}

void
MioDB::scheduleWalRecycle(uint64_t wal_id)
{
    // Dropping the job on a crash-freeze is safe: replaying a flushed
    // segment only re-inserts entries that sequence dedup discards --
    // the exact crash window between flush.after_publish and the old
    // synchronous removal, now widened to "until the job runs".
    // Captures are by value (registry outlives the store in every
    // external-registry configuration) so a shared-pool straggler that
    // outruns this instance's destructor touches nothing of `this`.
    wal::WalRegistry *registry = registry_;
    std::string name = walName(wal_id);
    sched_->submit(sched::JobClass::kWalRecycle,
                   [registry, name] { registry->remove(name); });
}

void
MioDB::scheduleCompaction(int level)
{
    if (sched_ == nullptr || crashed_.load())
        return;
    if (!options_.auto_compaction || level < 0 ||
        level >= options_.elastic_levels) {
        return;
    }
    if (compact_scheduled_[level].exchange(true))
        return;
    const sched::JobClass cls =
        (level == options_.elastic_levels - 1)
            ? sched::JobClass::kLazyCopyMerge
            : sched::JobClass::kZeroCopyMerge;
    sched_->submit(
        cls, [this, level] { compactionJob(level); },
        [this, level] { compact_scheduled_[level].store(false); });
}

void
MioDB::compactionJob(int level)
{
    const sched::JobClass cls =
        (level == options_.elastic_levels - 1)
            ? sched::JobClass::kLazyCopyMerge
            : sched::JobClass::kZeroCopyMerge;
    while (!shutting_down_.load() && !crashed_.load()) {
        CompactResult r = compactLevelOnce(level);
        if (r == CompactResult::kWorked) {
            notifyCapWaiters();
            sched_->notifyEvent();
            // The merge/migration output landed one level down; keep
            // the cascade moving without waiting for a kick.
            scheduleCompaction(level + 1);
            continue;
        }
        if (r == CompactResult::kRetryLater) {
            // Transient denial (NVM budget, SSD I/O): back off. The
            // retry keeps this level's token; its on_drop releases it
            // if a freeze/shutdown discards the retry.
            sched_->submitAfter(
                cls, 10, [this, level] { compactionJob(level); },
                [this, level] {
                    compact_scheduled_[level].store(false);
                    sched_->notifyEvent();
                });
            return;
        }
        break;  // kNoWork
    }
    compact_scheduled_[level].store(false);
    sched_->notifyEvent();
    // Close the submit/observe race: a push that raced the final
    // no-work check reschedules here.
    if (!shutting_down_.load() && !crashed_.load() &&
        levelHasWork(level)) {
        scheduleCompaction(level);
    }
}

MioDB::CompactResult
MioDB::compactLevelOnce(int level)
{
    BufferLevel &bl = state_->levels.level(level);
    const bool is_last = (level == options_.elastic_levels - 1);
    // Version-reclamation bound, captured once per attempt. A
    // snapshot registered after this capture is still safe: its bound
    // is at least the committed watermark of this instant, so every
    // shadow this merge drops under is visible to it too.
    const uint64_t keep_seq = oldestSnapshotSeq();

    if (is_last) {
        std::shared_ptr<PMTable> victim = bl.beginMigration();
        if (!victim) {
            // A previous round's migration may have failed after its
            // table moved to the migrating slot; this level's single
            // compaction job retries it here (mergeTable is
            // idempotent per key/sequence, the same property recovery
            // relies on).
            victim = bl.migratingTable();
        }
        if (!victim)
            return CompactResult::kNoWork;
        // The migrating table stays readable in the level until
        // finishMigration; a crash anywhere in this window re-runs
        // the (idempotent) migration on reopen.
        MIO_FAILPOINT("lcm.before_publish");
        Status ms = state_->repo->mergeTable(victim.get(), keep_seq);
        if (!ms.isOk()) {
            // Transient failure (SSD I/O error, NVM budget): leave
            // the migration in flight and retry after a backoff.
            return CompactResult::kRetryLater;
        }
        MIO_FAILPOINT("lcm.after_publish");
        bl.finishMigration();
        MIO_FAILPOINT("lcm.before_reclaim");
        // Reclaim the whole arena chain (the lazy memory-freeing step
        // of Sec. 4.4) -- deferred past any in-flight readers.
        retireTable(std::move(victim));
        return CompactResult::kWorked;
    }

    std::shared_ptr<MergeOp> op = bl.beginMerge();
    if (!op) {
        // Under buffer-cap pressure a level's single leftover table
        // can neither merge (needs a pair) nor migrate (not the last
        // level); demote it one level toward the repository so the
        // footprint can actually shrink below the cap.
        // NVM pressure above the soft watermark wants the same thing
        // the buffer cap does: push data toward the repository, which
        // is what actually frees device bytes (urgency boost).
        if (underMemoryPressure() && bl.size() == 1) {
            std::shared_ptr<PMTable> demoted = bl.beginMigration();
            if (demoted) {
                state_->levels.level(level + 1).push(demoted);
                bl.finishMigration();
                return CompactResult::kWorked;
            }
        }
        return CompactResult::kNoWork;
    }
    if (options_.zero_copy_merge) {
        zeroCopyMerge(op.get(), nvm_, &stats_, nullptr, keep_seq);
        // Publish the result downstream before retiring the merge so
        // readers never lose sight of the data.
        state_->levels.level(level + 1).push(op->oldt);
        bl.finishMerge(op);
    } else {
        uint64_t table_id = state_->next_table_id.fetch_add(1);
        auto result = copyingMerge(op->newt, op->oldt, nvm_, &stats_,
                                   table_id, options_.bits_per_key,
                                   keep_seq);
        if (result == nullptr) {
            // The NVM budget denied the copy target; degrade to the
            // allocation-free zero-copy merge instead of failing.
            zeroCopyMerge(op.get(), nvm_, &stats_, nullptr, keep_seq);
            state_->levels.level(level + 1).push(op->oldt);
            bl.finishMerge(op);
            return CompactResult::kWorked;
        }
        state_->levels.level(level + 1).push(std::move(result));
        bl.finishMerge(op);
    }
    return CompactResult::kWorked;
}

bool
MioDB::levelHasWork(int level) const
{
    BufferLevel &bl = state_->levels.level(level);
    if (level == options_.elastic_levels - 1)
        return bl.size() > 0 || bl.migratingTable() != nullptr;
    if (bl.size() >= 2)
        return true;
    // A single table is work only under pressure (demotion path).
    return underMemoryPressure() && bl.size() == 1;
}

void
MioDB::kickCompaction()
{
    if (!options_.auto_compaction)
        return;
    // Last level first: migration is what frees NVM, and its job
    // class already outranks the in-buffer merges.
    for (int i = options_.elastic_levels - 1; i >= 0; i--) {
        if (levelHasWork(i))
            scheduleCompaction(i);
    }
}

void
MioDB::kickMaintenance()
{
    bool pending;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        pending = !imms_.empty();
    }
    if (pending)
        scheduleFlush();
    kickCompaction();
}

void
MioDB::simulateCrash()
{
    onSimCrash();
}

void
MioDB::onSimCrash()
{
    const bool first = !crashed_.exchange(true);
    if (sched_ != nullptr) {
        // Freeze is idempotent, so this composes with the scheduler's
        // own SimCrash handling (which froze before calling us) and
        // with foreground crash sites (writeImpl's catch, and
        // simulateCrash), which freeze here.
        sched_->freeze();
        sched_->notifyEvent();
    }
    // Power failure is machine-wide: let the facade crash the sibling
    // shards. Fired once, after this shard froze, so the hook's own
    // simulateCrash() calls back into the exchange guard and return.
    if (first && crash_hook_)
        crash_hook_();
}

void
MioDB::recoverInterruptedCompactions()
{
    // A crash can leave each level with an in-flight zero-copy merge
    // (pair claimed, insertion mark possibly set) and the last level
    // with an in-flight migration. Both are completed before serving:
    // the merge resumes from the persistent mark (Sec. 4.7), and the
    // migration re-runs -- lazy-copy is idempotent per key/sequence.
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel &bl = state_->levels.level(i);
        BufferLevel::Snapshot snap = bl.snapshot();
        if (snap.merge) {
            resumeZeroCopyMerge(snap.merge.get(), nvm_, &stats_);
            if (i + 1 < state_->levels.numLevels()) {
                state_->levels.level(i + 1).push(snap.merge->oldt);
                bl.finishMerge(snap.merge);
            } else {
                Status ms =
                    state_->repo->mergeTable(snap.merge->oldt.get());
                for (int retry = 0; !ms.isOk() && retry < 3; retry++) {
                    ms = state_->repo->mergeTable(
                        snap.merge->oldt.get());
                }
                // On persistent failure leave the merge published:
                // readers still reach oldt through the manifest, so
                // the level is wedged but no data is lost.
                if (ms.isOk())
                    bl.finishMerge(snap.merge);
            }
        }
        if (snap.migrating) {
            Status ms = state_->repo->mergeTable(snap.migrating.get());
            // On failure the migration stays in flight (still
            // readable); compactLevelOnce retries it once jobs run.
            if (ms.isOk())
                bl.finishMigration();
        }
    }
}

void
MioDB::applyBufferCap()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    auto overCap = [this] {
        return state_->levels.totalArenaBytes() >
               options_.nvm_buffer_cap_bytes;
    };
    if (!overCap())
        return;
    // Elastic-buffer ceiling reached: throttle until migration makes
    // room (counted as a cumulative stall, like the baselines').
    // Every tick re-kicks compaction in case a level has demotable
    // work no completion event announced.
    ScopedTimer stall(&stats_.cumulative_stall_ns);
    sched::WaitOptions wo;
    wo.kick = [this] { kickCompaction(); };
    wo.tick_ms = 1;
    sched_->waitUntil(
        [&] {
            return !overCap() || shutting_down_.load() ||
                   crashed_.load() || sched_->frozen();
        },
        wo);
}

bool
MioDB::nvmOverSoftWatermark() const
{
    uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return false;
    return static_cast<double>(nvm_->meters().bytes_allocated) >
           options_.nvm_soft_watermark * static_cast<double>(cap);
}

Status
MioDB::applyNvmWatermarks()
{
    const uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return Status::ok();
    auto usage = [&] {
        return static_cast<double>(nvm_->meters().bytes_allocated) /
               static_cast<double>(cap);
    };
    // A parked flush job with a full immutable backlog is exhaustion
    // regardless of the usage fraction: a budget smaller than one
    // chunk ask denies allocations while bytes_allocated/cap still
    // sits below the watermarks. Without this, the next rotation
    // would wait forever on a backlog nothing can drain.
    auto flushWedged = [this] {
        if (!flush_blocked_.load())
            return false;
        std::lock_guard<std::mutex> il(imm_mu_);
        return static_cast<int>(imms_.size()) >
               options_.max_immutable_memtables;
    };
    double u = usage();
    if (u < options_.nvm_soft_watermark && !flushWedged())
        return Status::ok();
    // Urgency boost: migration toward the repository is what frees
    // NVM. Kicking schedules the merge jobs; the urgency probes lift
    // them ahead of everything else while pressure lasts.
    kickMaintenance();
    if (u < options_.nvm_hard_watermark && !flushWedged()) {
        stats_.write_slowdowns.fetch_add(1, std::memory_order_relaxed);
        ScopedTimer stall(&stats_.cumulative_stall_ns);
        sched_->waitFor(
            std::chrono::microseconds(options_.write_slowdown_micros));
        return Status::ok();
    }
    // Hard watermark (or wedged flusher): stall the leader (bounded)
    // waiting for migration/flush to make room, then fail the group
    // with busy -- callers see a clean retryable error, never an
    // abort.
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    ScopedTimer stall(&stats_.interval_stall_ns);
    sched::WaitOptions wo;
    wo.has_deadline = true;
    wo.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.write_stall_timeout_ms);
    wo.kick = [this] { kickMaintenance(); };
    wo.tick_ms = 1;
    bool drained = sched_->waitUntil(
        [&] {
            return (usage() < options_.nvm_hard_watermark &&
                    !flushWedged()) ||
                   shutting_down_.load() || crashed_.load();
        },
        wo);
    if (!drained) {
        stats_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
        return Status::busy("nvm hard watermark");
    }
    return Status::ok();
}

void
MioDB::notifyCapWaiters()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    // The scheduler's event sequence orders this bump after any
    // waiter's predicate check, so a footprint drop cannot be missed.
    sched_->notifyEvent();
}

void
MioDB::retireTable(std::shared_ptr<PMTable> table)
{
    retireToGraveyard(std::move(table));
}

void
MioDB::retireToGraveyard(std::shared_ptr<const void> retired)
{
    // Pairs with the fence in ReadGuard's constructor. The retired
    // object was unpublished before this call; if the load below
    // misses a reader's increment, that reader's first manifest /
    // snapshot load is guaranteed to observe the replacement
    // publication (the two seq_cst fences forbid both sides reading
    // stale), so the immediate drop can never free something a reader
    // can still reach.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (active_readers_.load(std::memory_order_acquire) == 0)
        return;
    std::lock_guard<std::mutex> lock(grave_mu_);
    graveyard_.push_back(std::move(retired));
}

void
MioDB::sweepGraveyard()
{
    std::vector<std::shared_ptr<const void>> doomed;
    {
        std::lock_guard<std::mutex> lock(grave_mu_);
        doomed.swap(graveyard_);
    }
    // Chains and manifests free here, outside the lock.
}

uint64_t
MioDB::scrubNow()
{
    ReadGuard guard(this);
    uint64_t corruptions = 0;
    uint64_t pm_bytes = 0;
    // Pace the pass to scrub_rate_mb_per_sec in 256 KiB chunks so the
    // scrubber never competes with foreground gets for a full memory
    // bandwidth share. The guard stays pinned across the waits --
    // acceptable because a paced pass only delays chain reclamation,
    // never readers. Shutdown/freeze aborts the pacing (waitFor
    // returns early), not the walk.
    const uint64_t rate_bps = options_.scrub_rate_mb_per_sec << 20;
    uint64_t unpaced = 0;
    auto pace = [&](uint64_t bytes) {
        if (rate_bps == 0)
            return;
        unpaced += bytes;
        constexpr uint64_t kPaceChunk = 256u << 10;
        if (unpaced < kPaceChunk)
            return;
        if (!shutting_down_.load(std::memory_order_relaxed) &&
            !crashed_.load(std::memory_order_relaxed)) {
            sched_->waitFor(std::chrono::microseconds(
                unpaced * 1000000ull / rate_bps));
        }
        unpaced = 0;
    };
    // One table: walk the (possibly merge-entangled) level-0 chain and
    // verify every entry checksum. Quarantine on the first mismatch --
    // an entry cannot be trusted once its neighbours lied, and reads
    // covering the table must answer corruption, not maybe-stale data.
    auto scrubTable = [&](const std::shared_ptr<PMTable> &t) {
        if (t == nullptr || t->isQuarantined())
            return;
        uint64_t bad = 0;
        for (const SkipList::Node *n = t->list().first(); n != nullptr;
             n = n->next(0)) {
            const uint64_t entry_bytes =
                sizeof(SkipList::Node) + n->key_len + n->value_len;
            pm_bytes += entry_bytes;
            pace(entry_bytes);
            if (!n->checksumOk())
                bad++;
        }
        if (bad != 0) {
            t->quarantine();
            stats_.tables_quarantined.fetch_add(
                1, std::memory_order_relaxed);
            corruptions += bad;
        }
    };
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel::Snapshot snap = state_->levels.level(i).snapshot();
        for (const auto &t : snap.tables)
            scrubTable(t);
        if (snap.merge) {
            scrubTable(snap.merge->newt);
            scrubTable(snap.merge->oldt);
        }
        scrubTable(snap.migrating);
    }
    // Charging the walked bytes as media reads both keeps the meters
    // honest and throttles the scrubber under a real perf model.
    nvm_->chargeRead(pm_bytes);

    Repository::ScrubReport repo = state_->repo->scrub();
    // The repository reports its walked bytes in one lump; settle the
    // pacing debt after the fact (the burst is one repository scan).
    pace(repo.bytes);

    stats_.scrub_passes.fetch_add(1, std::memory_order_relaxed);
    stats_.scrub_bytes.fetch_add(pm_bytes + repo.bytes,
                                 std::memory_order_relaxed);
    stats_.tables_quarantined.fetch_add(repo.quarantined,
                                        std::memory_order_relaxed);
    corruptions += repo.corruptions;
    if (corruptions != 0) {
        stats_.corruptions_detected.fetch_add(
            corruptions, std::memory_order_relaxed);
    }
    return corruptions;
}

void
MioDB::waitIdle()
{
    auto drained = [this] {
        // Crashed/frozen first: a crash mid-flush leaves its victim
        // in imms_ forever, so the queue check below would otherwise
        // spin on a store that can never drain.
        if (shutting_down_.load() || crashed_.load() ||
            sched_->frozen())
            return true;
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            // An exhausted NVM budget can pin the queue forever;
            // treat that as "as idle as the store can get".
            if (!imms_.empty() && !flush_blocked_.load())
                return false;
        }
        auto idle = [this](sched::JobClass c) {
            return sched_->queued(c) == 0 && sched_->running(c) == 0;
        };
        // Without compaction jobs the buffer never drains further
        // than the flusher leaves it; idle == immutables flushed.
        // quiescent() alone is not enough: a still-queued merge job
        // (e.g. a pressure demotion) would keep reshaping the buffer
        // -- and freeing NVM -- after waitIdle returned.
        if (options_.auto_compaction &&
            (!state_->levels.quiescent() ||
             !idle(sched::JobClass::kZeroCopyMerge) ||
             !idle(sched::JobClass::kLazyCopyMerge)))
            return false;
        // Housekeeping counts: callers rely on waitIdle meaning every
        // flushed segment's WAL has been recycled (the old flusher did
        // it synchronously), e.g. when measuring NVM occupancy.
        return idle(sched::JobClass::kWalRecycle);
    };
    // Wedge detection (WaitOptions): an exhausted budget can leave
    // levels that are not quiescent yet can never drain (every
    // migration retry is denied allocation). If no background counter
    // moves while the device keeps denying allocations, further
    // waiting would hang every caller.
    sched::WaitOptions wo;
    wo.kick = [this] { kickMaintenance(); };
    wo.progress = [this] {
        return stats_.flush_count.load(std::memory_order_relaxed) +
               stats_.compaction_count.load(
                   std::memory_order_relaxed) +
               stats_.zero_copy_merges.load(
                   std::memory_order_relaxed) +
               stats_.lazy_copy_merges.load(std::memory_order_relaxed);
    };
    wo.denials = [this] {
        return nvm_->faultMeters().alloc_failures;
    };
    kickMaintenance();
    sched_->waitUntil(drained, wo);
    state_->repo->waitIdle();
}

} // namespace mio::miodb
