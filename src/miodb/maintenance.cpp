/**
 * @file
 * MioDB's background maintenance half: every job body (flush,
 * zero-copy merges, lazy-copy migration, WAL recycling, scrubbing),
 * the scheduling glue that keeps the unified BackgroundScheduler
 * primed, and the backpressure/wait paths that park on it. The
 * API/read/write paths live in miodb.cpp.
 *
 * Scheduling invariant: at most one flush job and one compaction job
 * per level is ever queued or running, enforced by the "scheduled"
 * tokens. Each job drains its work stream in a loop, releases its
 * token, and then re-checks for work that arrived during the release
 * window -- so no wakeup is ever lost and no stream ever runs
 * concurrently with itself (the old dedicated-thread serialization,
 * kept under a shared pool).
 */
#include "miodb/miodb.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "miodb/one_piece_flush.h"
#include "sim/failpoint.h"
#include "util/clock.h"

namespace mio::miodb {

int
MioDB::backgroundWorkerCount() const
{
    if (options_.deterministic_background)
        return 0;
    if (options_.background_workers > 0)
        return options_.background_workers;
    // Auto: mirror the old dedicated-thread census -- one flusher,
    // one compactor per level (or one total), a scrubber slot when
    // periodic scrubbing is on, plus the SSD tier's compaction pool
    // in hierarchy mode.
    int n = 1;
    if (options_.auto_compaction) {
        n += options_.parallel_compaction ? options_.elastic_levels
                                          : 1;
    }
    if (options_.scrub_interval_ms > 0)
        n += 1;
    if (options_.use_ssd_repository)
        n += std::max(1, options_.ssd_lsm.compaction_threads);
    // A vlog GC relocation commit can park its worker briefly on a
    // memtable rotation; keep a slot of headroom so the flush that
    // rotation waits for always finds a free worker.
    if (options_.value_separation_threshold > 0)
        n += 1;
    // Instant recovery runs WAL replay as a background stream that
    // competes with foreground-triggered flushes; give it its own slot
    // so a long replay never starves the pipeline that drains it.
    if (options_.instant_recovery)
        n += 1;
    // The kMemTuner pass is cheap but periodic; a dedicated slot keeps
    // its cadence steady when every other worker is busy compacting.
    if (options_.adaptive_memory)
        n += 1;
    return n;
}

void
MioDB::startScheduler(sched::BackgroundScheduler *shared)
{
    if (shared != nullptr) {
        // Facade-owned pool: the worker census, stats sink, crash
        // callback, and urgency probes belong to the owner (only one
        // probe per class exists pool-wide, and it must aggregate
        // across every shard, not capture whichever shard bound last).
        sched_ = shared;
    } else {
        sched::BackgroundScheduler::Options so;
        so.deterministic = options_.deterministic_background;
        so.num_workers = backgroundWorkerCount();
        so.stats = &stats_;
        so.on_crash = [this] { onSimCrash(); };
        owned_sched_ = std::make_unique<sched::BackgroundScheduler>(so);
        sched_ = owned_sched_.get();
        // Memory pressure escalates the merge classes ahead of
        // everything else: movement toward the repository is what
        // actually frees NVM bytes (and shrinks the elastic buffer
        // under its cap).
        auto pressed = [this] { return underMemoryPressure(); };
        sched_->setUrgencyProbe(sched::JobClass::kLazyCopyMerge,
                                pressed);
        sched_->setUrgencyProbe(sched::JobClass::kZeroCopyMerge,
                                pressed);
        // A foreground op blocked on un-replayed frames escalates the
        // replay stream the same way memory pressure escalates merges.
        sched_->setUrgencyProbe(sched::JobClass::kWalReplay,
                                [this] { return replayUrgent(); });
    }
    compact_scheduled_ =
        std::make_unique<std::atomic<bool>[]>(options_.elastic_levels);
    for (int i = 0; i < options_.elastic_levels; i++)
        compact_scheduled_[i].store(false);
}

bool
MioDB::underMemoryPressure() const
{
    // The governor's kNvmBuffer mirror instead of walking every
    // level: this probe runs at every dispatch (urgency) and on the
    // write path, and the mirror is exact at install boundaries --
    // precise enough for a pressure threshold.
    return nvmOverSoftWatermark() ||
           (options_.nvm_buffer_cap_bytes != 0 &&
            nvmBufferCharged() > options_.nvm_buffer_cap_bytes);
}

void
MioDB::scheduleFlush()
{
    if (sched_ == nullptr || crashed_.load())
        return;
    if (flush_scheduled_.exchange(true))
        return;  // the queued/running flush job will observe the work
    sched_->submit(
        sched::JobClass::kFlush, [this] { flushJob(); },
        [this] { flush_scheduled_.store(false); });
}

void
MioDB::flushJob()
{
    while (!shutting_down_.load() && !crashed_.load()) {
        Immutable imm;
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            if (imms_.empty())
                break;
            imm = imms_.front();
        }
        uint64_t table_id = state_->next_table_id.fetch_add(1);
        std::shared_ptr<PMTable> table;
        if (options_.one_piece_flush) {
            table = onePieceFlush(imm.mem.get(), nvm_, &stats_,
                                  options_.bits_per_key, table_id);
        } else {
            table = nodeByNodeFlush(imm.mem.get(), nvm_, &stats_,
                                    options_.bits_per_key, table_id);
        }
        if (table == nullptr) {
            // NVM budget exhausted: leave the imm queued (its WAL
            // segment keeps it durable), nudge migration to free
            // space, and retry after a short backoff. The retry keeps
            // the flush token so no duplicate flush job can appear;
            // its on_drop releases the token if a freeze/shutdown
            // discards the retry.
            flush_blocked_.store(true);
            sched_->notifyEvent();
            kickCompaction();
            sched_->submitAfter(
                sched::JobClass::kFlush, 10, [this] { flushJob(); },
                [this] {
                    flush_scheduled_.store(false);
                    sched_->notifyEvent();
                });
            return;
        }
        flush_blocked_.store(false);
        stats_.flush_count.fetch_add(1, std::memory_order_relaxed);
        // A crash before the push loses the PMTable image but the WAL
        // segment survives (it is recycled only after the push);
        // after the push, replay of the same segment merely
        // re-inserts entries that sequence-number dedup discards.
        MIO_FAILPOINT("flush.before_publish");
        const size_t table_bytes = table->arenaBytes();
        state_->levels.level(0).push(std::move(table));
        MIO_FAILPOINT("flush.after_publish");
        chargeNvmBuffer(table_bytes);
        assert(governor_->chargesConsistent());
        // Invalidate cached entries the flushed table shadows, after
        // the L0 publish and before the imm leaves the queue: until
        // the pop every read still stops at the imm (never probing the
        // cache), and after the invalidation a re-fill reads through
        // the published L0 table. No window serves the stale value.
        invalidateCacheFor(*imm.mem);
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            if (!imms_.empty())
                imms_.pop_front();
        }
        if (options_.enable_wal)
            scheduleWalRecycle(imm.wal_id);
        sched_->notifyEvent();
        notifyCapWaiters();
        scheduleCompaction(0);
    }
    // Release the token, then close the submit/observe race: an imm
    // pushed after the emptiness check above (its scheduleFlush lost
    // to our token) reschedules here.
    flush_scheduled_.store(false);
    sched_->notifyEvent();
    bool more;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        more = !imms_.empty();
    }
    if (more && !shutting_down_.load())
        scheduleFlush();
}

void
MioDB::scheduleWalRecycle(uint64_t wal_id)
{
    // Dropping the job on a crash-freeze is safe: replaying a flushed
    // segment only re-inserts entries that sequence dedup discards --
    // the exact crash window between flush.after_publish and the old
    // synchronous removal, now widened to "until the job runs".
    // Captures are by value (registry outlives the store in every
    // external-registry configuration) so a shared-pool straggler that
    // outruns this instance's destructor touches nothing of `this`.
    wal::WalRegistry *registry = registry_;
    std::string name = walName(wal_id);
    sched_->submit(sched::JobClass::kWalRecycle,
                   [registry, name] { registry->remove(name); });
}

void
MioDB::scheduleCompaction(int level)
{
    if (sched_ == nullptr || crashed_.load())
        return;
    if (!options_.auto_compaction || level < 0 ||
        level >= options_.elastic_levels) {
        return;
    }
    if (compact_scheduled_[level].exchange(true))
        return;
    const sched::JobClass cls =
        (level == options_.elastic_levels - 1)
            ? sched::JobClass::kLazyCopyMerge
            : sched::JobClass::kZeroCopyMerge;
    sched_->submit(
        cls, [this, level] { compactionJob(level); },
        [this, level] { compact_scheduled_[level].store(false); });
}

void
MioDB::compactionJob(int level)
{
    const sched::JobClass cls =
        (level == options_.elastic_levels - 1)
            ? sched::JobClass::kLazyCopyMerge
            : sched::JobClass::kZeroCopyMerge;
    while (!shutting_down_.load() && !crashed_.load()) {
        CompactResult r = compactLevelOnce(level);
        if (r == CompactResult::kWorked) {
            notifyCapWaiters();
            sched_->notifyEvent();
            // The merge/migration output landed one level down; keep
            // the cascade moving without waiting for a kick.
            scheduleCompaction(level + 1);
            continue;
        }
        if (r == CompactResult::kRetryLater) {
            // Transient denial (NVM budget, SSD I/O): back off. The
            // retry keeps this level's token; its on_drop releases it
            // if a freeze/shutdown discards the retry.
            sched_->submitAfter(
                cls, 10, [this, level] { compactionJob(level); },
                [this, level] {
                    compact_scheduled_[level].store(false);
                    sched_->notifyEvent();
                });
            return;
        }
        break;  // kNoWork
    }
    compact_scheduled_[level].store(false);
    sched_->notifyEvent();
    // Close the submit/observe race: a push that raced the final
    // no-work check reschedules here.
    if (!shutting_down_.load() && !crashed_.load() &&
        levelHasWork(level)) {
        scheduleCompaction(level);
    }
}

MioDB::CompactResult
MioDB::compactLevelOnce(int level)
{
    BufferLevel &bl = state_->levels.level(level);
    const bool is_last = (level == options_.elastic_levels - 1);
    // Version-reclamation bound, captured once per attempt. A
    // snapshot registered after this capture is still safe: its bound
    // is at least the committed watermark of this instant, so every
    // shadow this merge drops under is visible to it too.
    const uint64_t keep_seq = oldestSnapshotSeq();

    if (is_last) {
        std::shared_ptr<PMTable> victim = bl.beginMigration();
        if (!victim) {
            // A previous round's migration may have failed after its
            // table moved to the migrating slot; this level's single
            // compaction job retries it here (mergeTable is
            // idempotent per key/sequence, the same property recovery
            // relies on).
            victim = bl.migratingTable();
        }
        if (!victim)
            return CompactResult::kNoWork;
        // The migrating table stays readable in the level until
        // finishMigration; a crash anywhere in this window re-runs
        // the (idempotent) migration on reopen.
        MIO_FAILPOINT("lcm.before_publish");
        Status ms = state_->repo->mergeTable(victim.get(), keep_seq);
        if (!ms.isOk()) {
            // Transient failure (SSD I/O error, NVM budget): leave
            // the migration in flight and retry after a backoff.
            return CompactResult::kRetryLater;
        }
        MIO_FAILPOINT("lcm.after_publish");
        bl.finishMigration();
        MIO_FAILPOINT("lcm.before_reclaim");
        // Reclaim the whole arena chain (the lazy memory-freeing step
        // of Sec. 4.4) -- deferred past any in-flight readers.
        const size_t victim_bytes = victim->arenaBytes();
        retireTable(std::move(victim));
        releaseNvmBuffer(victim_bytes);
        assert(governor_->chargesConsistent());
        return CompactResult::kWorked;
    }

    std::shared_ptr<MergeOp> op = bl.beginMerge();
    if (!op) {
        // Under buffer-cap pressure a level's single leftover table
        // can neither merge (needs a pair) nor migrate (not the last
        // level); demote it one level toward the repository so the
        // footprint can actually shrink below the cap.
        // NVM pressure above the soft watermark wants the same thing
        // the buffer cap does: push data toward the repository, which
        // is what actually frees device bytes (urgency boost).
        if (underMemoryPressure() && bl.size() == 1) {
            std::shared_ptr<PMTable> demoted = bl.beginMigration();
            if (demoted) {
                state_->levels.level(level + 1).push(demoted);
                bl.finishMigration();
                return CompactResult::kWorked;
            }
        }
        return CompactResult::kNoWork;
    }
    // Every version a merge drops decays the value log's live-bytes
    // estimate for the segment its pointer targets (GC trigger input).
    const DropNotify drop_hook =
        state_->vlog != nullptr
            ? DropNotify([this](EntryType t, const Slice &v) {
                  noteDropped(t, v);
              })
            : DropNotify();
    // kNvmBuffer accounting at the merge boundary is a before/after
    // delta over the surviving table(s): absorb() co-owns arenas, so
    // asking the inputs afterwards would double-count, and a copying
    // merge's output is a fresh arena whose inputs die at finishMerge.
    const size_t before_bytes =
        op->newt->arenaBytes() + op->oldt->arenaBytes();
    auto settleMergeDelta = [this](size_t before, size_t after) {
        if (after >= before)
            chargeNvmBuffer(after - before);
        else
            releaseNvmBuffer(before - after);
        assert(governor_->chargesConsistent());
    };
    if (options_.zero_copy_merge) {
        zeroCopyMerge(op.get(), nvm_, &stats_, nullptr, keep_seq,
                      drop_hook);
        // Publish the result downstream before retiring the merge so
        // readers never lose sight of the data.
        state_->levels.level(level + 1).push(op->oldt);
        bl.finishMerge(op);
        settleMergeDelta(before_bytes, op->oldt->arenaBytes());
    } else {
        uint64_t table_id = state_->next_table_id.fetch_add(1);
        auto result = copyingMerge(op->newt, op->oldt, nvm_, &stats_,
                                   table_id, options_.bits_per_key,
                                   keep_seq, drop_hook);
        if (result == nullptr) {
            // The NVM budget denied the copy target; degrade to the
            // allocation-free zero-copy merge instead of failing.
            zeroCopyMerge(op.get(), nvm_, &stats_, nullptr, keep_seq,
                          drop_hook);
            state_->levels.level(level + 1).push(op->oldt);
            bl.finishMerge(op);
            settleMergeDelta(before_bytes, op->oldt->arenaBytes());
            return CompactResult::kWorked;
        }
        const size_t after_bytes = result->arenaBytes();
        state_->levels.level(level + 1).push(std::move(result));
        bl.finishMerge(op);
        settleMergeDelta(before_bytes, after_bytes);
    }
    return CompactResult::kWorked;
}

bool
MioDB::levelHasWork(int level) const
{
    BufferLevel &bl = state_->levels.level(level);
    if (level == options_.elastic_levels - 1)
        return bl.size() > 0 || bl.migratingTable() != nullptr;
    if (bl.size() >= 2)
        return true;
    // A single table is work only under pressure (demotion path).
    return underMemoryPressure() && bl.size() == 1;
}

void
MioDB::kickCompaction()
{
    if (!options_.auto_compaction)
        return;
    // Last level first: migration is what frees NVM, and its job
    // class already outranks the in-buffer merges.
    for (int i = options_.elastic_levels - 1; i >= 0; i--) {
        if (levelHasWork(i))
            scheduleCompaction(i);
    }
}

void
MioDB::kickMaintenance()
{
    bool pending;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        pending = !imms_.empty();
    }
    if (pending)
        scheduleFlush();
    kickCompaction();
    scheduleVlogGc();
    scheduleWalReplay();
}

void
MioDB::noteDropped(EntryType type, const Slice &value)
{
    if (type != EntryType::kValuePointer || state_->vlog == nullptr)
        return;
    ValuePointer vp;
    if (!ValuePointer::decode(value, &vp))
        return;
    state_->vlog->noteDead(vp);
    scheduleVlogGc();
}

void
MioDB::scheduleVlogGc()
{
    if (sched_ == nullptr || crashed_.load() || shutting_down_.load())
        return;
    if (!vlog_gc_enabled_.load(std::memory_order_acquire))
        return;
    if (state_->vlog == nullptr || options_.vlog_gc_trigger_ratio <= 0)
        return;
    // Only queue a job when it has something to do: a victim past the
    // trigger ratio, or a fully-relocated segment awaiting its
    // snapshot gate. Keeps idle stores from cycling no-op jobs.
    bool has_pending;
    {
        std::lock_guard<std::mutex> gl(vlog_gc_mu_);
        has_pending = !vlog_pending_unlinks_.empty();
    }
    if (!has_pending &&
        !state_->vlog->hasGcCandidate(options_.vlog_gc_trigger_ratio))
        return;
    if (vlog_gc_scheduled_.exchange(true))
        return;
    sched_->submit(
        sched::JobClass::kVlogGc, [this] { vlogGcJob(); },
        [this] { vlog_gc_scheduled_.store(false); });
}

void
MioDB::vlogGcJob()
{
    ValueLog *vlog = state_->vlog.get();
    if (vlog == nullptr || shutting_down_.load() || crashed_.load()) {
        vlog_gc_scheduled_.store(false);
        sched_->notifyEvent();
        return;
    }

    // Unlink segments whose gate has passed: every snapshot that could
    // still resolve a pre-relocation pointer (bound < gc_seq) is gone.
    auto processPendingUnlinks = [&] {
        const uint64_t oldest = oldestSnapshotSeq();
        std::vector<uint64_t> ready;
        {
            std::lock_guard<std::mutex> gl(vlog_gc_mu_);
            auto it = vlog_pending_unlinks_.begin();
            while (it != vlog_pending_unlinks_.end()) {
                if (oldest >= it->gc_seq) {
                    ready.push_back(it->segment_id);
                    it = vlog_pending_unlinks_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (uint64_t id : ready) {
            // A crash here loses only the unlink: the segment's
            // records are all dead (index moved past them), so the
            // reopened store's GC probes re-discover and re-unlink it.
            MIO_FAILPOINT("vlog.gc.before_unlink");
            vlog->unlinkSegment(id);
        }
    };
    processPendingUnlinks();

    const uint64_t victim =
        options_.vlog_gc_trigger_ratio > 0
            ? vlog->pickGcVictim(options_.vlog_gc_trigger_ratio)
            : 0;
    bool aborted = false;
    bool deferred = false;
    if (victim != 0 && !shutting_down_.load() && !crashed_.load()) {
        stats_.vlog_gc_passes.fetch_add(1, std::memory_order_relaxed);
        std::vector<ValueLog::Record> records;
        if (vlog->collectRecords(victim, &records)) {
            for (const ValueLog::Record &rec : records) {
                if (shutting_down_.load() || crashed_.load()) {
                    aborted = true;
                    break;
                }
                // Liveness probe: the record is live iff the key's
                // newest committed entry is a pointer at exactly this
                // record. A corrupt probe means liveness is unknown --
                // never unlink over it.
                std::string cur;
                EntryType t = EntryType::kValue;
                bool corrupt = false;
                bool found = findNewestRaw(Slice(rec.key), &cur, &t,
                                           nullptr, &corrupt);
                if (corrupt) {
                    aborted = true;
                    break;
                }
                ValuePointer curp;
                if (!found || t != EntryType::kValuePointer ||
                    !ValuePointer::decode(Slice(cur), &curp) ||
                    !(curp == rec.ptr)) {
                    continue;  // dead record: nothing to move
                }
                MIO_FAILPOINT("vlog.gc.relocate");
                std::string payload;
                Status rs = vlog->read(rec.ptr, &payload);
                if (!rs.isOk()) {
                    aborted = true;  // damaged or racing: keep segment
                    break;
                }
                // Copy first, then swing the index. A crash between
                // the two leaves an orphan copy that a later pass
                // finds dead and reclaims with its segment.
                ValuePointer np;
                Status as = vlog->append(Slice(rec.key), Slice(payload),
                                         &np);
                if (!as.isOk()) {
                    aborted = true;  // NVM budget denied: retry later
                    break;
                }
                stats_.vlog_gc_relocated_bytes.fetch_add(
                    payload.size(), std::memory_order_relaxed);
                std::string encoded = np.encode();
                Writer w;
                w.key = Slice(rec.key);
                w.value = Slice(encoded);
                w.type = EntryType::kValuePointer;
                w.relocation = true;
                w.expected_ptr = rec.ptr;
                w.payload_bytes = rec.key.size() + encoded.size();
                Status ws = writeImpl(&w);
                if (!ws.isOk()) {
                    // Queue contention (busy) or a frozen store: the
                    // fresh copy was never indexed, so it is garbage.
                    vlog->noteDead(np);
                    aborted = true;
                    deferred = ws.isBusy();
                    break;
                }
                if (w.relocation_outcome.isOk()) {
                    // Applied; the old copy died with the install.
                } else if (w.relocation_outcome.isNotFound()) {
                    // A user write superseded us between probe and
                    // commit: our copy was never indexed.
                    vlog->noteDead(np);
                } else {
                    // Corrupt re-probe under leadership: liveness of
                    // the remaining records is unknowable.
                    vlog->noteDead(np);
                    aborted = true;
                    break;
                }
            }
        }
        if (!aborted) {
            // Every record is dead or relocated. The unlink waits for
            // snapshots captured before this instant to drain; new
            // snapshots (bound >= gc_seq) see the relocated pointers.
            const uint64_t gc_seq =
                visible_seq_.load(std::memory_order_acquire);
            // Pull the victim out of GC candidacy first, or the next
            // pass re-picks it and spins re-probing its (all-dead)
            // records for as long as a pinned snapshot holds the gate.
            vlog->markGcQueued(victim);
            std::lock_guard<std::mutex> gl(vlog_gc_mu_);
            vlog_pending_unlinks_.push_back(
                PendingUnlink{victim, gc_seq});
        }
    }

    // With no snapshots pinned the gate passes immediately; take the
    // freshly-emptied victim down in this same pass so waitIdle
    // converges without another kick.
    processPendingUnlinks();

    if (deferred && !shutting_down_.load() && !crashed_.load() &&
        vlog_gc_enabled_.load(std::memory_order_acquire)) {
        // Writer-queue contention: keep the token and retry after a
        // backoff (mirrors the flush/compaction retry pattern).
        sched_->submitAfter(
            sched::JobClass::kVlogGc, 10, [this] { vlogGcJob(); },
            [this] {
                vlog_gc_scheduled_.store(false);
                sched_->notifyEvent();
            });
        return;
    }
    vlog_gc_scheduled_.store(false);
    sched_->notifyEvent();
    if (!shutting_down_.load() && !crashed_.load() &&
        vlog->hasGcCandidate(options_.vlog_gc_trigger_ratio)) {
        scheduleVlogGc();
    }
}

void
MioDB::scheduleWalReplay()
{
    if (sched_ == nullptr || crashed_.load() || shutting_down_.load())
        return;
    if (replay_paused_.load(std::memory_order_acquire))
        return;
    if (recovery_pending_frames_.load(std::memory_order_acquire) == 0)
        return;
    if (replay_scheduled_.exchange(true))
        return;
    sched_->submit(
        sched::JobClass::kWalReplay, [this] { walReplayJob(); },
        [this] {
            replay_scheduled_.store(false);
            sched_->notifyEvent();
        });
}

void
MioDB::walReplayJob()
{
    while (!shutting_down_.load() && !crashed_.load() &&
           !replay_paused_.load(std::memory_order_acquire) &&
           recovery_pending_frames_.load(std::memory_order_acquire) >
               0) {
        Writer w;
        w.replay = ReplayKind::kBatch;
        w.op_count = 0;
        w.payload_bytes = 0;
        Status s;
        try {
            s = writeImpl(&w);
        } catch (const sim::SimCrash &crash) {
            onSimCrash();
            break;
        }
        if (s.isBusy()) {
            // Foreground writers hold the queue; their commits (and
            // any on-demand replay they trigger) make progress. Keep
            // the token and retry after a backoff, like vlog GC.
            sched_->submitAfter(
                sched::JobClass::kWalReplay, 10,
                [this] { walReplayJob(); },
                [this] {
                    replay_scheduled_.store(false);
                    sched_->notifyEvent();
                });
            return;
        }
        if (!s.isOk())
            break;
        // One batch landed; whoever was waiting is past its frames.
        replay_urgent_.store(false, std::memory_order_release);
    }
    replay_scheduled_.store(false);
    sched_->notifyEvent();
    // Un-pause or late frames: don't strand pending work without a
    // queued job (mirrors the vlog GC tail re-check).
    if (!shutting_down_.load() && !crashed_.load())
        scheduleWalReplay();
}

bool
MioDB::replayUrgent() const
{
    return replay_urgent_.load(std::memory_order_acquire) &&
           recovery_pending_frames_.load(std::memory_order_acquire) > 0;
}

void
MioDB::pauseBackgroundReplayForTesting(bool paused)
{
    replay_paused_.store(paused, std::memory_order_release);
    if (!paused)
        scheduleWalReplay();
    else if (sched_ != nullptr)
        sched_->notifyEvent();
}

void
MioDB::simulateCrash()
{
    onSimCrash();
}

void
MioDB::onSimCrash()
{
    const bool first = !crashed_.exchange(true);
    if (sched_ != nullptr) {
        // Freeze is idempotent, so this composes with the scheduler's
        // own SimCrash handling (which froze before calling us) and
        // with foreground crash sites (writeImpl's catch, and
        // simulateCrash), which freeze here.
        sched_->freeze();
        sched_->notifyEvent();
    }
    // Power failure is machine-wide: let the facade crash the sibling
    // shards. Fired once, after this shard froze, so the hook's own
    // simulateCrash() calls back into the exchange guard and return.
    if (first && crash_hook_)
        crash_hook_();
}

void
MioDB::recoverInterruptedCompactions()
{
    // A crash can leave each level with an in-flight zero-copy merge
    // (pair claimed, insertion mark possibly set) and the last level
    // with an in-flight migration. Both are completed before serving:
    // the merge resumes from the persistent mark (Sec. 4.7), and the
    // migration re-runs -- lazy-copy is idempotent per key/sequence.
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel &bl = state_->levels.level(i);
        BufferLevel::Snapshot snap = bl.snapshot();
        if (snap.merge) {
            // No snapshots can be live this early in reopen. Without
            // instant recovery the default keep_seq (drop everything
            // shadowed) is safe; with it, recoveryKeepSeq() floors
            // retention below every un-replayed frame's sequences.
            // Dropped pointers still decay the vlog estimate.
            const DropNotify drop_hook =
                state_->vlog != nullptr
                    ? DropNotify([this](EntryType t, const Slice &v) {
                          noteDropped(t, v);
                      })
                    : DropNotify();
            resumeZeroCopyMerge(snap.merge.get(), nvm_, &stats_,
                                nullptr, recoveryKeepSeq(), drop_hook);
            if (i + 1 < state_->levels.numLevels()) {
                state_->levels.level(i + 1).push(snap.merge->oldt);
                bl.finishMerge(snap.merge);
            } else {
                Status ms = state_->repo->mergeTable(
                    snap.merge->oldt.get(), recoveryKeepSeq());
                for (int retry = 0; !ms.isOk() && retry < 3; retry++) {
                    ms = state_->repo->mergeTable(
                        snap.merge->oldt.get(), recoveryKeepSeq());
                }
                // On persistent failure leave the merge published:
                // readers still reach oldt through the manifest, so
                // the level is wedged but no data is lost.
                if (ms.isOk())
                    bl.finishMerge(snap.merge);
            }
        }
        if (snap.migrating) {
            Status ms = state_->repo->mergeTable(snap.migrating.get(),
                                                 recoveryKeepSeq());
            // On failure the migration stays in flight (still
            // readable); compactLevelOnce retries it once jobs run.
            if (ms.isOk())
                bl.finishMigration();
        }
    }
}

void
MioDB::applyBufferCap()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    auto overCap = [this] {
        return nvmBufferCharged() > options_.nvm_buffer_cap_bytes;
    };
    if (!overCap())
        return;
    // A job's own write (vlog GC relocation) in deterministic mode
    // must not park here: nested waitUntil on a job thread cannot
    // assist-run the merges that would shrink the buffer.
    if (sched_->deterministic() &&
        sched::BackgroundScheduler::inJob())
        return;
    // Elastic-buffer ceiling reached: throttle until migration makes
    // room (counted as a cumulative stall, like the baselines').
    // Every tick re-kicks compaction in case a level has demotable
    // work no completion event announced.
    ScopedTimer stall(&stats_.cumulative_stall_ns);
    sched::WaitOptions wo;
    wo.kick = [this] { kickCompaction(); };
    wo.tick_ms = 1;
    sched_->waitUntil(
        [&] {
            return !overCap() || shutting_down_.load() ||
                   crashed_.load() || sched_->frozen();
        },
        wo);
}

bool
MioDB::nvmOverSoftWatermark() const
{
    uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return false;
    // Live governor value, not the option: the tuner lowers the soft
    // watermark under sustained write stalls so migration starts
    // freeing NVM earlier.
    return static_cast<double>(nvm_->meters().bytes_allocated) >
           governor_->nvmSoftWatermark() * static_cast<double>(cap);
}

Status
MioDB::applyNvmWatermarks()
{
    const uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return Status::ok();
    auto usage = [&] {
        return static_cast<double>(nvm_->meters().bytes_allocated) /
               static_cast<double>(cap);
    };
    // A parked flush job with a full immutable backlog is exhaustion
    // regardless of the usage fraction: a budget smaller than one
    // chunk ask denies allocations while bytes_allocated/cap still
    // sits below the watermarks. Without this, the next rotation
    // would wait forever on a backlog nothing can drain.
    auto flushWedged = [this] {
        if (!flush_blocked_.load())
            return false;
        std::lock_guard<std::mutex> il(imm_mu_);
        return static_cast<int>(imms_.size()) >
               options_.max_immutable_memtables;
    };
    const double soft_wm = governor_->nvmSoftWatermark();
    const double hard_wm = governor_->nvmHardWatermark();
    double u = usage();
    if (u < soft_wm && !flushWedged())
        return Status::ok();
    // Urgency boost: migration toward the repository is what frees
    // NVM. Kicking schedules the merge jobs; the urgency probes lift
    // them ahead of everything else while pressure lasts.
    kickMaintenance();
    if (u < hard_wm && !flushWedged()) {
        stats_.write_slowdowns.fetch_add(1, std::memory_order_relaxed);
        ScopedTimer stall(&stats_.cumulative_stall_ns);
        sched_->waitFor(
            std::chrono::microseconds(options_.write_slowdown_micros));
        return Status::ok();
    }
    // Hard watermark (or wedged flusher): stall the leader (bounded)
    // waiting for migration/flush to make room, then fail the group
    // with busy -- callers see a clean retryable error, never an
    // abort.
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    ScopedTimer stall(&stats_.interval_stall_ns);
    sched::WaitOptions wo;
    wo.has_deadline = true;
    wo.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.write_stall_timeout_ms);
    wo.kick = [this] { kickMaintenance(); };
    wo.tick_ms = 1;
    bool drained = sched_->waitUntil(
        [&] {
            return (usage() < hard_wm && !flushWedged()) ||
                   shutting_down_.load() || crashed_.load();
        },
        wo);
    if (!drained) {
        stats_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
        return Status::busy("nvm hard watermark");
    }
    return Status::ok();
}

void
MioDB::notifyCapWaiters()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    // The scheduler's event sequence orders this bump after any
    // waiter's predicate check, so a footprint drop cannot be missed.
    sched_->notifyEvent();
}

void
MioDB::retireTable(std::shared_ptr<PMTable> table)
{
    retireToGraveyard(std::move(table));
}

void
MioDB::retireToGraveyard(std::shared_ptr<const void> retired)
{
    // Pairs with the fence in ReadGuard's constructor. The retired
    // object was unpublished before this call; if the load below
    // misses a reader's increment, that reader's first manifest /
    // snapshot load is guaranteed to observe the replacement
    // publication (the two seq_cst fences forbid both sides reading
    // stale), so the immediate drop can never free something a reader
    // can still reach.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (active_readers_.load(std::memory_order_acquire) == 0)
        return;
    std::lock_guard<std::mutex> lock(grave_mu_);
    graveyard_.push_back(std::move(retired));
}

void
MioDB::sweepGraveyard()
{
    std::vector<std::shared_ptr<const void>> doomed;
    {
        std::lock_guard<std::mutex> lock(grave_mu_);
        doomed.swap(graveyard_);
    }
    // Chains and manifests free here, outside the lock.
}

uint64_t
MioDB::scrubNow()
{
    ReadGuard guard(this);
    uint64_t corruptions = 0;
    uint64_t pm_bytes = 0;
    // Pace the pass to scrub_rate_mb_per_sec in 256 KiB chunks so the
    // scrubber never competes with foreground gets for a full memory
    // bandwidth share. The guard stays pinned across the waits --
    // acceptable because a paced pass only delays chain reclamation,
    // never readers. Shutdown/freeze aborts the pacing (waitFor
    // returns early), not the walk.
    const uint64_t rate_bps = options_.scrub_rate_mb_per_sec << 20;
    uint64_t unpaced = 0;
    auto pace = [&](uint64_t bytes) {
        if (rate_bps == 0)
            return;
        unpaced += bytes;
        constexpr uint64_t kPaceChunk = 256u << 10;
        if (unpaced < kPaceChunk)
            return;
        if (!shutting_down_.load(std::memory_order_relaxed) &&
            !crashed_.load(std::memory_order_relaxed)) {
            sched_->waitFor(std::chrono::microseconds(
                unpaced * 1000000ull / rate_bps));
        }
        unpaced = 0;
    };
    // One table: walk the (possibly merge-entangled) level-0 chain and
    // verify every entry checksum. Quarantine on the first mismatch --
    // an entry cannot be trusted once its neighbours lied, and reads
    // covering the table must answer corruption, not maybe-stale data.
    auto scrubTable = [&](const std::shared_ptr<PMTable> &t) {
        if (t == nullptr || t->isQuarantined())
            return;
        uint64_t bad = 0;
        for (const SkipList::Node *n = t->list().first(); n != nullptr;
             n = n->next(0)) {
            const uint64_t entry_bytes =
                sizeof(SkipList::Node) + n->key_len + n->value_len;
            pm_bytes += entry_bytes;
            pace(entry_bytes);
            if (!n->checksumOk())
                bad++;
        }
        if (bad != 0) {
            t->quarantine();
            stats_.tables_quarantined.fetch_add(
                1, std::memory_order_relaxed);
            corruptions += bad;
        }
    };
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel::Snapshot snap = state_->levels.level(i).snapshot();
        for (const auto &t : snap.tables)
            scrubTable(t);
        if (snap.merge) {
            scrubTable(snap.merge->newt);
            scrubTable(snap.merge->oldt);
        }
        scrubTable(snap.migrating);
    }
    // Charging the walked bytes as media reads both keeps the meters
    // honest and throttles the scrubber under a real perf model.
    nvm_->chargeRead(pm_bytes);

    Repository::ScrubReport repo = state_->repo->scrub();
    // The repository reports its walked bytes in one lump; settle the
    // pacing debt after the fact (the burst is one repository scan).
    pace(repo.bytes);

    // Value-log leg: re-verify every segment's frame CRCs. scrub()
    // bumps corruptions_detected itself, so its mismatches join the
    // return value only after the counter add below.
    uint64_t vlog_bytes = 0;
    uint64_t vlog_mismatches = 0;
    if (state_->vlog != nullptr) {
        vlog_mismatches = state_->vlog->scrub(&vlog_bytes);
        pace(vlog_bytes);
    }

    stats_.scrub_passes.fetch_add(1, std::memory_order_relaxed);
    stats_.scrub_bytes.fetch_add(pm_bytes + repo.bytes + vlog_bytes,
                                 std::memory_order_relaxed);
    stats_.tables_quarantined.fetch_add(repo.quarantined,
                                        std::memory_order_relaxed);
    corruptions += repo.corruptions;
    if (corruptions != 0) {
        stats_.corruptions_detected.fetch_add(
            corruptions, std::memory_order_relaxed);
    }
    // Media damage found anywhere invalidates the read cache whole:
    // a value cached before its source table was quarantined would
    // keep masking the corruption that reads must now surface.
    if (read_cache_ != nullptr &&
        (corruptions + vlog_mismatches > 0 || repo.quarantined > 0)) {
        read_cache_->clear();
    }
    return corruptions + vlog_mismatches;
}

void
MioDB::invalidateCacheFor(const lsm::MemTable &mem)
{
    if (read_cache_ == nullptr)
        return;
    for (const SkipList::Node *n = mem.list().first(); n != nullptr;
         n = n->next(0)) {
        read_cache_->invalidate(n->key());
    }
}

bool
MioDB::memoryAccountingConsistent() const
{
    // The drift witness holds at every instant (a mid-flight charge
    // can only make the sub-budget sum read low, never high).
    if (!governor_->chargesConsistent())
        return false;
    // Exact cross-checks against ground truth only make sense at
    // quiescence: an in-flight zero-copy merge's absorb() co-owns
    // arenas (totalArenaBytes transiently double-counts), and a
    // shared governor aggregates every shard's charges.
    if (sched_ == nullptr || sched_->busyJobs() != 0 ||
        state_->levels.anyLevelBusy())
        return true;
    if (nvm_buffer_bytes_.load(std::memory_order_relaxed) !=
        state_->levels.totalArenaBytes())
        return false;
    if (governor_->memtableChargers() == 1) {
        if (state_->vlog != nullptr &&
            governor_->charged(mem::SubBudget::kVlog) !=
                state_->vlog->capacityBytes())
            return false;
        if (read_cache_ != nullptr &&
            governor_->charged(mem::SubBudget::kReadCacheDram) !=
                read_cache_->bytesUsed())
            return false;
    }
    return true;
}

void
MioDB::memTunerPass()
{
    mem::MemoryGovernor::TunerSignals s;
    s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
    s.cache_misses =
        stats_.cache_misses.load(std::memory_order_relaxed);
    s.cache_evictions =
        stats_.cache_evictions.load(std::memory_order_relaxed);
    s.write_stalls =
        stats_.write_stalls.load(std::memory_order_relaxed);
    s.write_slowdowns =
        stats_.write_slowdowns.load(std::memory_order_relaxed);
    s.busy_rejections =
        stats_.busy_rejections.load(std::memory_order_relaxed);
    s.flush_count = stats_.flush_count.load(std::memory_order_relaxed);
    const uint64_t cap = nvm_->capacityBytes();
    if (cap != 0) {
        s.nvm_usage =
            static_cast<double>(nvm_->meters().bytes_allocated) /
            static_cast<double>(cap);
    }
    if (governor_->tunerPass(s) && read_cache_ != nullptr) {
        // The cache retargets immediately (shrinks evict at once);
        // the MemTable side is picked up by the next rotation.
        read_cache_->setCapacity(
            governor_->limit(mem::SubBudget::kReadCacheDram));
    }
}

void
MioDB::waitIdle()
{
    auto drained = [this] {
        // Crashed/frozen first: a crash mid-flush leaves its victim
        // in imms_ forever, so the queue check below would otherwise
        // spin on a store that can never drain.
        if (shutting_down_.load() || crashed_.load() ||
            sched_->frozen())
            return true;
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            // An exhausted NVM budget can pin the queue forever;
            // treat that as "as idle as the store can get".
            if (!imms_.empty() && !flush_blocked_.load())
                return false;
        }
        auto idle = [this](sched::JobClass c) {
            return sched_->queued(c) == 0 && sched_->running(c) == 0;
        };
        // Without compaction jobs the buffer never drains further
        // than the flusher leaves it; idle == immutables flushed.
        // quiescent() alone is not enough: a still-queued merge job
        // (e.g. a pressure demotion) would keep reshaping the buffer
        // -- and freeing NVM -- after waitIdle returned.
        if (options_.auto_compaction &&
            (!state_->levels.quiescent() ||
             !idle(sched::JobClass::kZeroCopyMerge) ||
             !idle(sched::JobClass::kLazyCopyMerge)))
            return false;
        // Vlog GC converges: each job processes ripe unlinks and at
        // most one victim, resubmitting only while another victim
        // exists. Snapshot-gated unlinks do NOT hold waitIdle open --
        // they can only ripen once the caller releases its pins.
        if (!idle(sched::JobClass::kVlogGc) ||
            vlog_gc_scheduled_.load())
            return false;
        // Instant recovery: idle means replay drained too (callers
        // compare against fully-recovered state). A paused replay is
        // excluded -- tests pause it precisely to observe the store
        // mid-recovery, and waiting would deadlock.
        if (!replay_paused_.load(std::memory_order_acquire) &&
            recovery_pending_frames_.load(std::memory_order_acquire) >
                0)
            return false;
        if (!idle(sched::JobClass::kWalReplay) ||
            replay_scheduled_.load())
            return false;
        // Housekeeping counts: callers rely on waitIdle meaning every
        // flushed segment's WAL has been recycled (the old flusher did
        // it synchronously), e.g. when measuring NVM occupancy.
        return idle(sched::JobClass::kWalRecycle);
    };
    // Wedge detection (WaitOptions): an exhausted budget can leave
    // levels that are not quiescent yet can never drain (every
    // migration retry is denied allocation). If no background counter
    // moves while the device keeps denying allocations, further
    // waiting would hang every caller.
    sched::WaitOptions wo;
    wo.kick = [this] { kickMaintenance(); };
    wo.progress = [this] {
        return stats_.flush_count.load(std::memory_order_relaxed) +
               stats_.compaction_count.load(
                   std::memory_order_relaxed) +
               stats_.zero_copy_merges.load(
                   std::memory_order_relaxed) +
               stats_.lazy_copy_merges.load(
                   std::memory_order_relaxed) +
               stats_.wal_frames_replayed.load(
                   std::memory_order_relaxed);
    };
    wo.denials = [this] {
        return nvm_->faultMeters().alloc_failures;
    };
    kickMaintenance();
    sched_->waitUntil(drained, wo);
    state_->repo->waitIdle();
}

} // namespace mio::miodb
