#include "miodb/value_log.h"

#include <cstring>

#include "mem/memory_governor.h"
#include "sim/failpoint.h"
#include "util/coding.h"
#include "util/hash.h"

namespace mio::miodb {

void
ValuePointer::encodeTo(char *dst) const
{
    encodeFixed64(dst, segment_id);
    encodeFixed64(dst + 8, offset);
    encodeFixed32(dst + 16, length);
    encodeFixed32(dst + 20, checksum);
}

std::string
ValuePointer::encode() const
{
    std::string s(kEncodedSize, '\0');
    encodeTo(s.data());
    return s;
}

bool
ValuePointer::decode(const Slice &in, ValuePointer *out)
{
    if (in.size() != kEncodedSize)
        return false;
    out->segment_id = decodeFixed64(in.data());
    out->offset = decodeFixed64(in.data() + 8);
    out->length = decodeFixed32(in.data() + 16);
    out->checksum = decodeFixed32(in.data() + 20);
    return true;
}

ValueLog::ValueLog(sim::NvmDevice *nvm, StatsCounters *stats,
                   size_t segment_bytes)
    : nvm_(nvm), stats_(stats),
      segment_bytes_(segment_bytes < 4096 ? 4096 : segment_bytes)
{}

ValueLog::~ValueLog() = default;

std::shared_ptr<ValueLog::Segment>
ValueLog::newSegmentLocked(size_t min_bytes)
{
    size_t cap = segment_bytes_;
    if (cap < min_bytes)
        cap = min_bytes;  // one oversized record gets its own segment
    // Budget admission before touching the device: the governor's
    // kVlog limit is the vlog_budget_bytes ceiling, and denial here
    // surfaces as Status::busy from append, same as device exhaustion.
    if (governor_ != nullptr &&
        governor_->wouldExceed(mem::SubBudget::kVlog, cap))
        return nullptr;
    char *base = nvm_->allocateRegion(cap);
    if (base == nullptr)
        return nullptr;
    if (governor_ != nullptr)
        governor_->charge(mem::SubBudget::kVlog, cap);
    auto seg = std::make_shared<Segment>();
    seg->id = next_segment_id_++;
    seg->base = base;
    seg->capacity = cap;
    seg->nvm = nvm_;
    segments_[seg->id] = seg;
    stats_->vlog_segments_created.fetch_add(1, std::memory_order_relaxed);
    stats_->vlog_segments_live.fetch_add(1, std::memory_order_relaxed);
    return seg;
}

std::shared_ptr<ValueLog::Segment>
ValueLog::findSegment(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(id);
    return it == segments_.end() ? nullptr : it->second;
}

Status
ValueLog::append(const Slice &key, const Slice &value, ValuePointer *out)
{
    const size_t frame_len = kFrameHeader + key.size() + value.size();
    std::string frame(frame_len, '\0');
    encodeFixed32(frame.data() + 4, static_cast<uint32_t>(key.size()));
    encodeFixed32(frame.data() + 8, static_cast<uint32_t>(value.size()));
    memcpy(frame.data() + kFrameHeader, key.data(), key.size());
    memcpy(frame.data() + kFrameHeader + key.size(), value.data(),
           value.size());
    encodeFixed32(frame.data(),
                  recordChecksum(frame.data() + 4, frame_len - 4));

    std::shared_ptr<Segment> seg;
    size_t off;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (head_ == nullptr ||
            head_->used.load(std::memory_order_relaxed) + frame_len >
                head_->capacity) {
            if (head_ != nullptr)
                head_->sealed = true;
            head_ = newSegmentLocked(frame_len);
            if (head_ == nullptr)
                return Status::busy("vlog segment allocation denied");
        }
        seg = head_;
        off = seg->used.load(std::memory_order_relaxed);
        // Reserve the range under the lock. The frame bytes are
        // written outside the lock, so the writer mark goes up first:
        // a scrubber that observes the new tail (release/acquire on
        // `used`) is guaranteed to also observe inflight != 0 and
        // keep off the segment until the persist below lands.
        seg->inflight.fetch_add(1, std::memory_order_relaxed);
        seg->used.store(off + frame_len, std::memory_order_release);
        seg->payload_bytes.fetch_add(value.size(),
                                     std::memory_order_relaxed);
        seg->live_bytes.fetch_add(value.size(),
                                  std::memory_order_relaxed);
    }

    nvm_->write(seg->base + off, frame.data(), frame_len,
                sim::WriteKind::kFramed);
    // A crash here is a torn append: the frame bytes are written but
    // not persist-covered, so the shadow model rolls them back and the
    // recovery rescan truncates the tail at the bad frame CRC.
    MIO_FAILPOINT("vlog.append");
    nvm_->persist(seg->base + off, frame_len);
    seg->inflight.fetch_sub(1, std::memory_order_release);

    out->segment_id = seg->id;
    out->offset = off + kFrameHeader + key.size();
    out->length = static_cast<uint32_t>(value.size());
    out->checksum = recordChecksum(value.data(), value.size());

    stats_->vlog_appends.fetch_add(1, std::memory_order_relaxed);
    stats_->vlog_appended_bytes.fetch_add(frame_len,
                                          std::memory_order_relaxed);
    // The frame is persistent-media traffic like a flush or compaction
    // write; charging it here keeps StatsSnapshot::writeAmplification
    // honest for the separated build.
    stats_->storage_bytes_written.fetch_add(frame_len,
                                            std::memory_order_relaxed);
    return Status::ok();
}

Status
ValueLog::read(const ValuePointer &ptr, std::string *value) const
{
    std::shared_ptr<Segment> seg = findSegment(ptr.segment_id);
    if (seg == nullptr)
        return Status::notFound("vlog segment unlinked");
    const size_t used = seg->used.load(std::memory_order_acquire);
    if (ptr.offset + ptr.length > used)
        return Status::corruption("vlog pointer out of segment bounds");
    const char *payload = seg->base + ptr.offset;
    nvm_->chargeRead(ptr.length);
    if (recordChecksum(payload, ptr.length) != ptr.checksum) {
        stats_->corruptions_detected.fetch_add(1,
                                               std::memory_order_relaxed);
        return Status::corruption("vlog payload checksum mismatch");
    }
    value->assign(payload, ptr.length);
    stats_->vlog_deref_reads.fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
}

void
ValueLog::noteDead(const ValuePointer &ptr)
{
    std::shared_ptr<Segment> seg = findSegment(ptr.segment_id);
    if (seg == nullptr)
        return;
    // Saturating decrement: recovery resets live_bytes conservatively,
    // so replayed merges may re-drop versions already counted dead.
    uint64_t cur = seg->live_bytes.load(std::memory_order_relaxed);
    while (cur > 0) {
        uint64_t dec = cur < ptr.length ? cur : ptr.length;
        if (seg->live_bytes.compare_exchange_weak(
                cur, cur - dec, std::memory_order_relaxed))
            break;
    }
}

uint64_t
ValueLog::pickGcVictim(double trigger_ratio) const
{
    if (trigger_ratio <= 0.0)
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t best = 0;
    double best_frac = trigger_ratio;
    for (const auto &[id, seg] : segments_) {
        if (!seg->sealed || seg->gc_queued)
            continue;
        uint64_t payload =
            seg->payload_bytes.load(std::memory_order_relaxed);
        uint64_t live = seg->live_bytes.load(std::memory_order_relaxed);
        double frac = payload == 0
                          ? 0.0
                          : static_cast<double>(live) /
                                static_cast<double>(payload);
        if (frac < best_frac) {
            best_frac = frac;
            best = id;
        }
    }
    return best;
}

bool
ValueLog::hasGcCandidate(double trigger_ratio) const
{
    return pickGcVictim(trigger_ratio) != 0;
}

void
ValueLog::markGcQueued(uint64_t segment_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(segment_id);
    if (it != segments_.end())
        it->second->gc_queued = true;
}

bool
ValueLog::collectRecords(uint64_t segment_id,
                         std::vector<Record> *out) const
{
    std::shared_ptr<Segment> seg = findSegment(segment_id);
    if (seg == nullptr)
        return false;
    const size_t used = seg->used.load(std::memory_order_acquire);
    nvm_->chargeRead(used);
    size_t off = 0;
    while (off + kFrameHeader <= used) {
        const char *frame = seg->base + off;
        uint32_t key_len = decodeFixed32(frame + 4);
        uint32_t value_len = decodeFixed32(frame + 8);
        size_t frame_len =
            kFrameHeader + static_cast<size_t>(key_len) + value_len;
        if (off + frame_len > used)
            break;
        if (decodeFixed32(frame) !=
            recordChecksum(frame + 4, frame_len - 4))
            break;
        Record r;
        r.key.assign(frame + kFrameHeader, key_len);
        r.ptr.segment_id = segment_id;
        r.ptr.offset = off + kFrameHeader + key_len;
        r.ptr.length = value_len;
        r.ptr.checksum =
            recordChecksum(frame + kFrameHeader + key_len, value_len);
        out->push_back(std::move(r));
        off += frame_len;
    }
    return true;
}

uint64_t
ValueLog::unlinkSegment(uint64_t segment_id)
{
    std::shared_ptr<Segment> seg;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = segments_.find(segment_id);
        if (it == segments_.end())
            return 0;
        seg = it->second;
        segments_.erase(it);
        if (head_ == seg)
            head_ = nullptr;
        if (governor_ != nullptr)
            governor_->release(mem::SubBudget::kVlog, seg->capacity);
    }
    stats_->vlog_segments_unlinked.fetch_add(1,
                                             std::memory_order_relaxed);
    stats_->vlog_segments_live.fetch_sub(1, std::memory_order_relaxed);
    uint64_t reclaimed = seg->capacity;
    stats_->vlog_gc_reclaimed_bytes.fetch_add(reclaimed,
                                              std::memory_order_relaxed);
    return reclaimed;  // region freed when the last reader releases
}

size_t
ValueLog::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return segments_.size();
}

uint64_t
ValueLog::liveBytes(uint64_t segment_id) const
{
    std::shared_ptr<Segment> seg = findSegment(segment_id);
    return seg == nullptr
               ? 0
               : seg->live_bytes.load(std::memory_order_relaxed);
}

void
ValueLog::rebind(sim::NvmDevice *nvm, StatsCounters *stats)
{
    std::lock_guard<std::mutex> lock(mu_);
    nvm_ = nvm;
    stats_ = stats;
    uint64_t live = 0;
    for (const auto &[id, seg] : segments_) {
        (void)id;
        seg->nvm = nvm;
        live++;
    }
    // The gauge lives in the (new) stats sink now; reinstate it there.
    stats_->vlog_segments_live.store(live, std::memory_order_relaxed);
}

void
ValueLog::rebindGovernor(std::shared_ptr<mem::MemoryGovernor> governor)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (governor_ == governor)
        return;
    uint64_t cap = 0;
    for (const auto &[id, seg] : segments_) {
        (void)id;
        cap += seg->capacity;
    }
    // Move the outstanding reservation, not just the pointer: the log
    // (and its segments) outlives store objects inside NvmState. The
    // shared_ptr hand-off here is what makes a torn open safe -- if
    // the previous ctor threw mid-recovery, its governor only survived
    // (with this charge still on its books) because we held it.
    if (governor_ != nullptr)
        governor_->release(mem::SubBudget::kVlog, cap);
    governor_ = std::move(governor);
    if (governor_ != nullptr)
        governor_->charge(mem::SubBudget::kVlog, cap);
}

uint64_t
ValueLog::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t cap = 0;
    for (const auto &[id, seg] : segments_) {
        (void)id;
        cap += seg->capacity;
    }
    return cap;
}

void
ValueLog::rescanSegment(Segment *seg) const
{
    const size_t used = seg->used.load(std::memory_order_relaxed);
    size_t off = 0;
    uint64_t payload = 0;
    while (off + kFrameHeader <= used) {
        const char *frame = seg->base + off;
        uint32_t key_len = decodeFixed32(frame + 4);
        uint32_t value_len = decodeFixed32(frame + 8);
        size_t frame_len =
            kFrameHeader + static_cast<size_t>(key_len) + value_len;
        if (off + frame_len > used)
            break;
        if (decodeFixed32(frame) !=
            recordChecksum(frame + 4, frame_len - 4))
            break;
        payload += value_len;
        off += frame_len;
    }
    seg->used.store(off, std::memory_order_relaxed);
    seg->payload_bytes.store(payload, std::memory_order_relaxed);
    // Conservative: everything that survived the rescan is presumed
    // live; GC probes against the index establish the truth later.
    seg->live_bytes.store(payload, std::memory_order_relaxed);
}

void
ValueLog::recoverAfterCrash()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[id, seg] : segments_) {
        (void)id;
        nvm_->chargeRead(seg->used.load(std::memory_order_relaxed));
        rescanSegment(seg.get());
        seg->sealed = true;  // a fresh head opens on the next append
        // The pending-unlink list was in-memory and is gone; a queued
        // segment must become pickable again to be re-discovered.
        seg->gc_queued = false;
        // An append interrupted by the crash never dropped its writer
        // mark; clear it or the scrubber shuns the segment forever.
        seg->inflight.store(0, std::memory_order_relaxed);
    }
    head_ = nullptr;
}

uint64_t
ValueLog::scrub(uint64_t *bytes_verified) const
{
    std::vector<std::shared_ptr<Segment>> segs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        segs.reserve(segments_.size());
        for (const auto &[id, seg] : segments_) {
            (void)id;
            segs.push_back(seg);
        }
    }
    uint64_t mismatches = 0;
    uint64_t scanned = 0;
    for (const auto &seg : segs) {
        // Bound first, writer check second: any append reserved below
        // this bound either still holds its writer mark (segment
        // skipped) or has release-decremented it after the persist
        // (its bytes are visible to the acquire load). Appends
        // starting later write past the bound, outside this scan.
        const size_t used = seg->used.load(std::memory_order_acquire);
        if (seg->inflight.load(std::memory_order_acquire) != 0)
            continue;  // hot tail: next pass gets it
        nvm_->chargeRead(used);
        size_t off = 0;
        while (off + kFrameHeader <= used) {
            const char *frame = seg->base + off;
            uint32_t key_len = decodeFixed32(frame + 4);
            uint32_t value_len = decodeFixed32(frame + 8);
            size_t frame_len =
                kFrameHeader + static_cast<size_t>(key_len) + value_len;
            if (off + frame_len > used)
                break;
            if (decodeFixed32(frame) !=
                recordChecksum(frame + 4, frame_len - 4)) {
                mismatches++;
                // Frame boundaries are untrustworthy past a bad CRC.
                break;
            }
            scanned += frame_len;
            off += frame_len;
        }
    }
    if (bytes_verified != nullptr)
        *bytes_verified += scanned;
    if (mismatches > 0)
        stats_->corruptions_detected.fetch_add(
            mismatches, std::memory_order_relaxed);
    return mismatches;
}

} // namespace mio::miodb
