#include "miodb/level_manager.h"

namespace mio::miodb {

BufferLevel::BufferLevel()
{
    // Publish an empty manifest eagerly so readers never see nullptr
    // and the retry protocol (compare the pointer after a miss) works
    // from the very first push.
    current_ = std::make_shared<const LevelManifest>();
    published_.store(current_.get(), std::memory_order_release);
}

std::shared_ptr<const BloomFilter>
BufferLevel::buildSummaryLocked(const LevelManifest &m) const
{
    std::vector<std::shared_ptr<const BloomFilter>> members;
    members.reserve(m.tables.size() + 3);
    for (const auto &ref : m.tables)
        members.push_back(ref.bloom);
    if (m.merge) {
        members.push_back(m.merge_newt_bloom);
        members.push_back(m.merge_oldt_bloom);
    }
    if (m.migrating)
        members.push_back(m.migrating_bloom);
    if (members.empty())
        return nullptr;
    for (const auto &f : members) {
        if (f == nullptr || !members[0]->sameGeometry(*f))
            return nullptr;  // OR would be unsound; never skip
    }
    if (members.size() == 1)
        return members[0];  // immutable, so sharing is free
    auto sum = std::make_shared<BloomFilter>(*members[0]);
    for (size_t i = 1; i < members.size(); i++)
        sum->merge(*members[i]);
    return sum;
}

void
BufferLevel::republishLocked(std::shared_ptr<const BloomFilter> added)
{
    auto m = std::make_shared<LevelManifest>();
    m->tables.reserve(tables_.size());
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
        LevelManifest::TableRef ref;
        ref.table = *it;
        ref.bloom = (*it)->bloomRef();
        ref.min_key = (*it)->minKey();
        ref.max_key = (*it)->maxKey();
        m->tables.push_back(std::move(ref));
    }
    m->merge = merge_;
    if (merge_) {
        m->merge_newt_bloom = merge_->newt->bloomRef();
        m->merge_oldt_bloom = merge_->oldt->bloomRef();
    }
    m->migrating = migrating_;
    if (migrating_) {
        m->migrating_bloom = migrating_->bloomRef();
        m->migrating_min = migrating_->minKey();
        m->migrating_max = migrating_->maxKey();
    }
    if (summary_enabled_) {
        const std::shared_ptr<const BloomFilter> &prev =
            current_->summary;
        if (added != nullptr && prev != nullptr &&
            prev->sameGeometry(*added)) {
            // Membership grew by one table: one OR extends the proof.
            auto sum = std::make_shared<BloomFilter>(*prev);
            sum->merge(*added);
            m->summary = std::move(sum);
        } else if (added != nullptr && !current_->hasMembers()) {
            m->summary = std::move(added);
        } else {
            m->summary = buildSummaryLocked(*m);
        }
    }
    std::shared_ptr<const LevelManifest> old = std::move(current_);
    current_ = std::move(m);
    published_.store(current_.get(), std::memory_order_release);
    if (retire_)
        retire_(std::move(old));
}

void
BufferLevel::push(std::shared_ptr<PMTable> table)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<const BloomFilter> added = table->bloomRef();
    tables_.push_back(std::move(table));
    republishLocked(std::move(added));
}

std::shared_ptr<const LevelManifest>
BufferLevel::manifestSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
}

void
BufferLevel::setRetireCallback(
    std::function<void(std::shared_ptr<const void>)> cb)
{
    std::lock_guard<std::mutex> lock(mu_);
    retire_ = std::move(cb);
}

void
BufferLevel::enableBloomSummary(bool enabled)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (summary_enabled_ == enabled)
        return;
    summary_enabled_ = enabled;
    republishLocked(nullptr);
}

BufferLevel::Snapshot
BufferLevel::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.tables.reserve(tables_.size());
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it)
        snap.tables.push_back(*it);
    snap.merge = merge_;
    snap.migrating = migrating_;
    return snap;
}

size_t
BufferLevel::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
}

bool
BufferLevel::busy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return merge_ != nullptr || migrating_ != nullptr;
}

std::shared_ptr<MergeOp>
BufferLevel::beginMerge()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_ != nullptr || tables_.size() < 2)
        return nullptr;
    if (tables_[0]->isQuarantined() || tables_[1]->isQuarantined())
        return nullptr;  // corrupt tables stay pinned in place
    auto op = std::make_shared<MergeOp>();
    op->oldt = tables_[0];
    op->newt = tables_[1];
    // Capture the pair's combined range before any reader can see the
    // op; it is invariant for the whole merge (absorb only ever
    // extends oldt toward this union).
    op->min_key = op->oldt->minKey();
    if (std::string k = op->newt->minKey();
        Slice(k).compare(Slice(op->min_key)) < 0)
        op->min_key = std::move(k);
    op->max_key = op->oldt->maxKey();
    if (std::string k = op->newt->maxKey();
        Slice(k).compare(Slice(op->max_key)) > 0)
        op->max_key = std::move(k);
    tables_.pop_front();
    tables_.pop_front();
    merge_ = op;
    // Register the op on both participants BEFORE any node moves:
    // snapshot iterators anchored on either table consult this to
    // chase entries through the in-flight merge.
    op->oldt->setActiveMerge(op);
    op->newt->setActiveMerge(op);
    // Membership is unchanged (the pair moved deque -> MergeOp), but
    // readers need the op published to run the three-step protocol.
    republishLocked(nullptr);
    return op;
}

void
BufferLevel::finishMerge(const std::shared_ptr<MergeOp> &op)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_ != op)
        return;
    // Only the result sheds its registration; the emptied newtable
    // keeps the (done) op as its permanent absorbed-into pointer so a
    // pinned iterator can still reach its entries in the result.
    op->oldt->clearActiveMerge();
    merge_ = nullptr;
    republishLocked(nullptr);
}

std::shared_ptr<PMTable>
BufferLevel::beginMigration()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (migrating_ != nullptr || tables_.empty())
        return nullptr;
    if (tables_.front()->isQuarantined())
        return nullptr;  // corrupt tables stay pinned in place
    migrating_ = tables_.front();
    tables_.pop_front();
    republishLocked(nullptr);
    return migrating_;
}

std::shared_ptr<PMTable>
BufferLevel::migratingTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return migrating_;
}

void
BufferLevel::finishMigration()
{
    std::lock_guard<std::mutex> lock(mu_);
    migrating_ = nullptr;
    republishLocked(nullptr);
}

size_t
BufferLevel::arenaBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto &t : tables_)
        total += t->arenaBytes();
    if (merge_) {
        total += merge_->newt->arenaBytes();
        total += merge_->oldt->arenaBytes();
    }
    if (migrating_)
        total += migrating_->arenaBytes();
    return total;
}

bool
LevelManager::quiescent() const
{
    // Resting state: no merges in flight, no level holds a mergeable
    // pair, and the last level (which migrates single tables to the
    // repository) is drained. One leftover table per upper level is
    // the paper's steady light-load state.
    for (size_t i = 0; i < levels_.size(); i++) {
        if (levels_[i].busy())
            return false;
        size_t limit = (i + 1 == levels_.size()) ? 0 : 1;
        if (levels_[i].size() > limit)
            return false;
    }
    return true;
}

bool
LevelManager::anyLevelBusy() const
{
    for (const auto &level : levels_)
        if (level.busy())
            return true;
    return false;
}

size_t
LevelManager::totalTables() const
{
    size_t total = 0;
    for (const auto &level : levels_)
        total += level.size();
    return total;
}

size_t
LevelManager::totalArenaBytes() const
{
    size_t total = 0;
    for (const auto &level : levels_)
        total += level.arenaBytes();
    return total;
}

} // namespace mio::miodb
