#include "miodb/level_manager.h"

namespace mio::miodb {

void
BufferLevel::push(std::shared_ptr<PMTable> table)
{
    std::lock_guard<std::mutex> lock(mu_);
    tables_.push_back(std::move(table));
}

BufferLevel::Snapshot
BufferLevel::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.tables.reserve(tables_.size());
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it)
        snap.tables.push_back(*it);
    snap.merge = merge_;
    snap.migrating = migrating_;
    return snap;
}

size_t
BufferLevel::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
}

bool
BufferLevel::busy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return merge_ != nullptr || migrating_ != nullptr;
}

std::shared_ptr<MergeOp>
BufferLevel::beginMerge()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_ != nullptr || tables_.size() < 2)
        return nullptr;
    auto op = std::make_shared<MergeOp>();
    op->oldt = tables_[0];
    op->newt = tables_[1];
    tables_.pop_front();
    tables_.pop_front();
    merge_ = op;
    return op;
}

void
BufferLevel::finishMerge(const std::shared_ptr<MergeOp> &op)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_ == op)
        merge_ = nullptr;
}

std::shared_ptr<PMTable>
BufferLevel::beginMigration()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (migrating_ != nullptr || tables_.empty())
        return nullptr;
    migrating_ = tables_.front();
    tables_.pop_front();
    return migrating_;
}

void
BufferLevel::finishMigration()
{
    std::lock_guard<std::mutex> lock(mu_);
    migrating_ = nullptr;
}

size_t
BufferLevel::arenaBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto &t : tables_)
        total += t->arenaBytes();
    if (merge_) {
        total += merge_->newt->arenaBytes();
        total += merge_->oldt->arenaBytes();
    }
    if (migrating_)
        total += migrating_->arenaBytes();
    return total;
}

bool
LevelManager::quiescent() const
{
    // Resting state: no merges in flight, no level holds a mergeable
    // pair, and the last level (which migrates single tables to the
    // repository) is drained. One leftover table per upper level is
    // the paper's steady light-load state.
    for (size_t i = 0; i < levels_.size(); i++) {
        if (levels_[i].busy())
            return false;
        size_t limit = (i + 1 == levels_.size()) ? 0 : 1;
        if (levels_[i].size() > limit)
            return false;
    }
    return true;
}

size_t
LevelManager::totalTables() const
{
    size_t total = 0;
    for (const auto &level : levels_)
        total += level.size();
    return total;
}

size_t
LevelManager::totalArenaBytes() const
{
    size_t total = 0;
    for (const auto &level : levels_)
        total += level.arenaBytes();
    return total;
}

} // namespace mio::miodb
