/**
 * @file
 * PMTable: a persistent skip list in emulated NVM, the unit the
 * elastic buffer manages (paper Sec. 4.1). A PMTable starts life as a
 * one-piece-flushed MemTable image and grows through zero-copy merges,
 * after which it references the arenas of every table merged into it;
 * all of that memory is reclaimed together after the table is finally
 * lazy-copied into the data repository.
 */
#ifndef MIO_MIODB_PMTABLE_H_
#define MIO_MIODB_PMTABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "mem/arena.h"
#include "skiplist/skiplist.h"

namespace mio::miodb {

struct MergeOp;

class PMTable
{
  public:
    /**
     * Wrap a relocated (or freshly built) skip-list image.
     *
     * @param arena NVM arena holding the image (shared: merges move
     *        arena ownership between tables)
     * @param head head node within the arena
     * @param entry_count live entries
     * @param bloom per-table filter (fixed geometry for OR-merging)
     * @param table_id monotonically increasing age stamp
     */
    PMTable(std::shared_ptr<Arena> arena, SkipList::Node *head,
            uint64_t entry_count, BloomFilter bloom, uint64_t table_id,
            std::string min_key, std::string max_key);

    SkipList &list() { return list_; }
    const SkipList &list() const { return list_; }
    /** Unsynchronized access; safe only when no merge targets this. */
    const BloomFilter &bloom() const { return *bloom_; }

    /**
     * Current filter as an immutable shared snapshot. absorb() swaps
     * in a freshly merged filter instead of mutating in place, so a
     * captured reference stays valid (and probe-safe) forever -- this
     * is what lets a level manifest probe member filters without
     * taking meta_mu_ per get.
     */
    std::shared_ptr<const BloomFilter>
    bloomRef() const
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        return bloom_;
    }

    uint64_t tableId() const { return table_id_; }
    uint64_t entryCount() const { return list_.entryCount(); }

    std::string minKey() const;
    std::string maxKey() const;

    /** True when @p key falls within [minKey, maxKey]. */
    bool coversKey(const Slice &key) const;

    /** Bloom probe, safe against a concurrent absorb(). */
    bool bloomMayContain(const Slice &key) const;

    /** Bytes of NVM the referenced arenas reserve. */
    size_t arenaBytes() const;

    size_t
    arenaCount() const
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        return arenas_.size();
    }

    /**
     * Share @p other's arenas, bloom bits, and key range after a
     * zero-copy merge moved its nodes into this table. The arenas are
     * co-owned (not stolen) so readers still holding @p other keep
     * its memory alive; everything is reclaimed together once the
     * last reference to the merged chain drops after lazy-copy.
     */
    void absorb(PMTable &other);

    /** Number of zero-copy merges that produced this table. */
    int mergeDepth() const { return merge_depth_; }

    // ---- integrity quarantine (scrubber, see DESIGN.md Sec. 5e) ----

    /**
     * Mark this table corrupt: reads whose key could live here answer
     * Status::corruption instead of serving (or skipping past) its
     * entries, and compaction stops consuming it.
     */
    void quarantine() { quarantined_.store(true, std::memory_order_release); }
    bool
    isQuarantined() const
    {
        return quarantined_.load(std::memory_order_acquire);
    }

    // ---- active-merge registration (snapshot iterators) ----------
    //
    // A pinned snapshot iterator anchored on this table must follow
    // nodes a zero-copy merge moves out from under it. beginMerge()
    // registers the MergeOp on BOTH participants; finishMerge()
    // clears only the oldtable's slot -- the emptied newtable keeps
    // the (done) op forever as its "absorbed into" pointer, so an
    // iterator pinning it can chase its entries into the result.

    void setActiveMerge(std::shared_ptr<MergeOp> op);
    void clearActiveMerge();
    std::shared_ptr<MergeOp> activeMerge() const;

    /**
     * Bumped on every registration change (never on node movement).
     * An iterator that sees the same epoch before and after a plain
     * pointer step knows no merge started or retired in between.
     */
    uint64_t
    mergeEpoch() const
    {
        return merge_epoch_.load(std::memory_order_seq_cst);
    }

  private:
    SkipList list_;
    /** Guards arenas_, bloom_, and the key range during absorb(). */
    mutable std::mutex meta_mu_;
    std::vector<std::shared_ptr<Arena>> arenas_;
    /** Copy-on-write: absorb() replaces, never mutates (see bloomRef). */
    std::shared_ptr<const BloomFilter> bloom_;
    uint64_t table_id_;
    std::string min_key_;
    std::string max_key_;
    int merge_depth_ = 0;
    std::atomic<bool> quarantined_{false};
    /** Guards active_merge_ (see setActiveMerge). */
    mutable std::mutex merge_mu_;
    std::shared_ptr<MergeOp> active_merge_;
    std::atomic<uint64_t> merge_epoch_{0};
};

/**
 * Shared state of an in-flight zero-copy merge. While active, readers
 * must consult: newtable, then the insertion mark, then oldtable
 * (paper Sec. 4.3 cases 1-2) -- the node in transit is always visible
 * through at least one of the three.
 */
struct MergeOp {
    std::shared_ptr<PMTable> newt;  //!< the younger of the oldest two
    std::shared_ptr<PMTable> oldt;  //!< merge target (becomes result)
    /** Node currently being moved; persistent state for recovery. */
    std::atomic<SkipList::Node *> mark{nullptr};
    std::atomic<bool> done{false};
    /**
     * Combined key range of the pair, captured at beginMerge(). The
     * union range is invariant while nodes shuffle between the two
     * tables, so readers can range-prune the whole in-flight pair
     * without locking either table's metadata.
     */
    std::string min_key;
    std::string max_key;

    bool
    coversKey(const Slice &key) const
    {
        return Slice(min_key).compare(key) <= 0 &&
               key.compare(Slice(max_key)) <= 0;
    }
};

// Defined after MergeOp: resetting a shared_ptr<MergeOp> needs the
// complete type.

inline void
PMTable::setActiveMerge(std::shared_ptr<MergeOp> op)
{
    std::lock_guard<std::mutex> lock(merge_mu_);
    active_merge_ = std::move(op);
    merge_epoch_.fetch_add(1, std::memory_order_seq_cst);
}

inline void
PMTable::clearActiveMerge()
{
    std::lock_guard<std::mutex> lock(merge_mu_);
    active_merge_.reset();
    merge_epoch_.fetch_add(1, std::memory_order_seq_cst);
}

inline std::shared_ptr<MergeOp>
PMTable::activeMerge() const
{
    std::lock_guard<std::mutex> lock(merge_mu_);
    return active_merge_;
}

} // namespace mio::miodb

#endif // MIO_MIODB_PMTABLE_H_
