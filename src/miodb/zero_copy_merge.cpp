#include "miodb/zero_copy_merge.h"

#include <cassert>
#include <vector>

#include "sim/failpoint.h"
#include "miodb/one_piece_flush.h"
#include "miodb/skiplist_merge_util.h"
#include "util/clock.h"

namespace mio::miodb {

namespace {

using Node = SkipList::Node;
using Splice = SkipList::Splice;

/**
 * Core merge loop shared by the fresh and resumed paths.
 * @p pending is a node already detached from the newtable that still
 * must be inserted (the recovered insertion mark), or nullptr.
 * @p keep_seq gates version reclamation: an older version is only
 * unlinked when a newer version with seq <= keep_seq shadows it for
 * every pinned snapshot (kMaxSequence when none are pinned).
 */
bool
mergeLoop(MergeOp *op, sim::NvmDevice *device, StatsCounters *stats,
          const MergeThrottle &throttle, Node *pending,
          uint64_t keep_seq, const DropNotify &drop_notify)
{
    SkipList &src = op->newt->list();
    SkipList &dst = op->oldt->list();

    uint64_t moved = 0;
    size_t pointer_stores = 0;

    auto notify_dropped = [&](const std::vector<Node *> &drop) {
        if (!drop_notify)
            return;
        for (Node *d : drop)
            drop_notify(d->entryType(), d->value());
    };

    auto flush_charges = [&]() {
        if (pointer_stores > 0) {
            device->chargeWrite(pointer_stores * sizeof(void *));
            stats->storage_bytes_written.fetch_add(
                pointer_stores * sizeof(void *),
                std::memory_order_relaxed);
            pointer_stores = 0;
        }
    };

    auto insert_into_dst = [&](Node *n) {
        device->chargeRandomReads(
            sim::skipDescentDepth(dst.entryCount()));
        Splice splice;
        Node *succ0 = dst.findGreaterOrEqual(n->key(), &splice);
        // Snapshot-kept versions the merge moved earlier may already
        // sit in the destination; descend below them so the run stays
        // in internal-key order (key asc, seq desc).
        bool shadowed = false;
        Node *succ = succ0;
        while (succ != nullptr && succ->key() == n->key() &&
               succ->seq > n->seq) {
            if (succ->seq <= keep_seq)
                shadowed = true;
            for (int level = 0; level < succ->height; level++)
                splice.prev[level] = succ;
            succ = succ->next(0);
        }
        if (succ != nullptr && succ->key() == n->key() &&
            succ->seq == n->seq) {
            // The destination already holds this exact version
            // (possible when a resumed merge re-examines the marked
            // node): nothing to do.
            return;
        }
        if (shadowed) {
            // A newer version visible to the oldest pinned snapshot
            // already landed (stale resume): the node stays detached,
            // its memory reclaimed with the absorbed arenas.
            if (drop_notify)
                drop_notify(n->entryType(), n->value());
            return;
        }
        dst.linkNode(n, &splice);
        pointer_stores += n->height;
        // The same-key run now starts at succ0 only when the descent
        // stepped over newer kept versions; otherwise n linked at the
        // run's head.
        Node *first_same = (succ0 != nullptr &&
                            succ0->key() == n->key() &&
                            succ0->seq > n->seq)
                               ? succ0
                               : n;
        auto drop = shadowedVersions(first_same, n->key(), keep_seq);
        notify_dropped(drop);
        pointer_stores += unlinkShadowed(&dst, n->key(), &splice, drop);
    };

    if (pending != nullptr) {
        insert_into_dst(pending);
        op->mark.store(nullptr, std::memory_order_release);
        moved++;
    }

    while (true) {
        Node *n = src.first();
        if (n == nullptr)
            break;

        // All shadowed versions of one key are dropped in the same
        // step (the paper drops N_d5 while processing N_d7): unlink
        // them first, while the newest version is still present, so a
        // concurrent newtable search can never surface a stale
        // version. Versions a pinned snapshot still needs stay linked
        // and flow through the mark protocol as their own steps.
        auto drop = shadowedVersions(n, n->key(), keep_seq);
        if (!drop.empty()) {
            notify_dropped(drop);
            Splice head_splice;
            for (int level = 0; level < SkipList::kMaxHeight; level++)
                head_splice.prev[level] = src.head();
            pointer_stores +=
                unlinkShadowed(&src, n->key(), &head_splice, drop);
        }

        // Publish the node in the insertion mark, then detach it from
        // the newtable (top-down), then link it into the oldtable
        // (bottom-up). Readers always find it in one of the three.
        op->mark.store(n, std::memory_order_release);
        src.unlinkFirst();
        pointer_stores += n->height;
        // The node now lives ONLY in the insertion mark; recovery
        // must re-insert it from there.
        MIO_FAILPOINT("zcm.detached");

        if (throttle && !throttle(moved)) {
            // Simulated crash at the protocol's most delicate point:
            // the node lives only in the insertion mark. Recovery
            // (resumeZeroCopyMerge) re-inserts it from the mark.
            flush_charges();
            return false;
        }

        insert_into_dst(n);
        // Linked into the oldtable but the mark still points at it; a
        // resumed merge re-examines the node and must find it idempotent.
        MIO_FAILPOINT("zcm.relinked");
        op->mark.store(nullptr, std::memory_order_release);
        moved++;
    }

    flush_charges();
    op->oldt->absorb(*op->newt);
    op->done.store(true, std::memory_order_release);
    stats->zero_copy_merges.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace

bool
zeroCopyMerge(MergeOp *op, sim::NvmDevice *device, StatsCounters *stats,
              const MergeThrottle &throttle, uint64_t keep_seq,
              const DropNotify &drop_notify)
{
    ScopedTimer timer(&stats->compaction_ns);
    return mergeLoop(op, device, stats, throttle, nullptr, keep_seq,
                     drop_notify);
}

bool
resumeZeroCopyMerge(MergeOp *op, sim::NvmDevice *device,
                    StatsCounters *stats, const MergeThrottle &throttle,
                    uint64_t keep_seq, const DropNotify &drop_notify)
{
    ScopedTimer timer(&stats->compaction_ns);
    Node *pending = op->mark.load(std::memory_order_acquire);
    return mergeLoop(op, device, stats, throttle, pending, keep_seq,
                     drop_notify);
}

bool
mergeAwareGet(const MergeOp *op, const Slice &key, std::string *value,
              EntryType *type, uint64_t *seq, bool verify,
              bool *corrupt)
{
    // Step 1: the newtable (newest data of the pair).
    if (op->newt->list().get(key, value, type, seq, verify, corrupt))
        return true;
    if (corrupt != nullptr && *corrupt)
        return false;
    // Step 2: the insertion mark -- the node in transit.
    Node *marked = op->mark.load(std::memory_order_acquire);
    if (marked != nullptr && marked->key() == key) {
        if (verify && !marked->checksumOk()) {
            if (corrupt != nullptr)
                *corrupt = true;
            return false;
        }
        *type = marked->entryType();
        if (seq != nullptr)
            *seq = marked->seq;
        if (marked->entryType() != EntryType::kDeletion) {
            value->assign(marked->value().data(),
                          marked->value().size());
        }
        return true;
    }
    // Step 3: the oldtable.
    return op->oldt->list().get(key, value, type, seq, verify,
                                corrupt);
}

std::shared_ptr<PMTable>
copyingMerge(const std::shared_ptr<PMTable> &newt,
             const std::shared_ptr<PMTable> &oldt,
             sim::NvmDevice *device, StatsCounters *stats,
             uint64_t table_id, int bits_per_key, uint64_t keep_seq,
             const DropNotify &drop_notify)
{
    (void)bits_per_key;  // geometry comes from the inputs' filters
    ScopedTimer timer(&stats->compaction_ns);

    // Random node heights differ from the sources', so leave headroom.
    size_t capacity = newt->arenaBytes() + oldt->arenaBytes();
    capacity += capacity / 4 + 4096;
    auto arena = std::make_shared<Arena>(capacity, device,
                                         /*charge_allocations=*/true);
    if (!arena->valid())
        return nullptr;  // NVM budget denied; caller degrades
    SkipList out(arena.get(), table_id * 131 + 3);

    SkipList::Iterator a(&newt->list());
    SkipList::Iterator b(&oldt->list());
    a.seekToFirst();
    b.seekToFirst();

    std::string last_key;
    bool has_last = false;
    bool last_shadowed = false;
    auto emit = [&](const Slice &key, uint64_t seq, EntryType type,
                    const Slice &val) {
        if (has_last && key == Slice(last_key)) {
            if (last_shadowed) {
                // Older duplicate no pinned snapshot needs.
                if (drop_notify)
                    drop_notify(type, val);
                return;
            }
        } else {
            last_shadowed = false;
        }
        bool ok = out.insert(key, seq, type, val);
        assert(ok && "copying-merge arena sized for both inputs");
        (void)ok;
        if (seq <= keep_seq)
            last_shadowed = true;
        last_key = key.toString();
        has_last = true;
    };
    while (a.valid() || b.valid()) {
        bool take_a;
        if (!a.valid()) {
            take_a = false;
        } else if (!b.valid()) {
            take_a = true;
        } else {
            take_a = SkipList::entryBefore(a.key(), a.seq(), b.key(),
                                           b.seq());
        }
        if (take_a) {
            emit(a.key(), a.seq(), a.entryType(), a.value());
            a.next();
        } else {
            emit(b.key(), b.seq(), b.entryType(), b.value());
            b.next();
        }
    }
    stats->storage_bytes_written.fetch_add(arena->used(),
                                           std::memory_order_relaxed);

    BloomFilter bloom = newt->bloom();
    bloom.merge(oldt->bloom());
    std::string min_key = Slice(newt->minKey()).compare(
                              Slice(oldt->minKey())) < 0
                              ? newt->minKey()
                              : oldt->minKey();
    std::string max_key = Slice(newt->maxKey()).compare(
                              Slice(oldt->maxKey())) > 0
                              ? newt->maxKey()
                              : oldt->maxKey();
    auto result = std::make_shared<PMTable>(std::move(arena), out.head(),
                                            out.entryCount(),
                                            std::move(bloom), table_id,
                                            std::move(min_key),
                                            std::move(max_key));
    stats->compaction_count.fetch_add(1, std::memory_order_relaxed);
    return result;
}

} // namespace mio::miodb
