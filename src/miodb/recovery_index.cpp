#include "miodb/recovery_index.h"

#include <algorithm>

#include "miodb/wal_format.h"
#include "sim/failpoint.h"
#include "sim/nvm_device.h"
#include "sstable/internal_key.h"

namespace mio::miodb {

void
RecoveryIndex::build(wal::WalRegistry *registry,
                     const std::string &own_floor, sim::NvmDevice *nvm,
                     uint64_t *corrupt_frames)
{
    segments_.clear();
    pending_frames_ = 0;
    max_seq_ = 0;
    min_first_seq_ = kMaxSequence;

    auto names = registry->list();
    std::sort(names.begin(), names.end());
    for (const auto &name : names) {
        if (name >= own_floor)
            continue;  // a fresh segment of the adopting instance
        auto segment = registry->find(name);
        if (!segment)
            continue;
        // A crash here loses only the (DRAM) directory; the segments
        // themselves are untouched and the next open rescans them.
        MIO_FAILPOINT("recovery.index.build");
        Segment seg;
        seg.name = name;
        seg.segment = segment;
        wal::LogReader reader(segment.get());
        Slice payload;
        wal::LogReader::Position pos;
        uint64_t scanned_bytes = 0;
        while (reader.readRecordInPlace(&payload, &pos)) {
            WalDigest d;
            if (!parseWalDigest(payload, &d)) {
                // Malformed past the CRC: unreplayable, and nothing
                // after it can be trusted (mirrors the torn-tail rule
                // of the full replay).
                (*corrupt_frames)++;
                break;
            }
            // The scan consumed the frame header and the digest
            // prefix; the wrapped payload was never touched.
            scanned_bytes += 8 + d.header_bytes +
                             std::min<size_t>(d.inner.size(), 16);
            Frame f;
            f.pos = pos;
            f.min_key = d.min_key;
            f.max_key = d.max_key;
            f.first_seq = d.first_seq;
            f.op_count = d.op_count;
            f.unbounded = d.unbounded;
            seg.frames.push_back(f);
            max_seq_ = std::max(max_seq_, d.first_seq + d.op_count);
            min_first_seq_ = std::min(min_first_seq_, d.first_seq);
        }
        if (reader.sawCorruption())
            (*corrupt_frames)++;
        if (nvm != nullptr && scanned_bytes > 0)
            nvm->chargeRead(scanned_bytes);
        seg.pending = seg.frames.size();
        pending_frames_ += seg.pending;
        segments_.push_back(std::move(seg));
    }
}

size_t
RecoveryIndex::pendingSegments() const
{
    size_t n = 0;
    for (const auto &seg : segments_) {
        if (seg.pending > 0)
            n++;
    }
    return n;
}

bool
RecoveryIndex::matches(const Frame &f, ReplayKind kind,
                       const Slice &key)
{
    switch (kind) {
    case ReplayKind::kBatch:
    case ReplayKind::kAll:
        return true;
    case ReplayKind::kKey:
        return f.unbounded || (f.min_key.compare(key) <= 0 &&
                               key.compare(f.max_key) <= 0);
    case ReplayKind::kFromKey:
        return f.unbounded || f.max_key.compare(key) >= 0;
    case ReplayKind::kNone:
        break;
    }
    return false;
}

bool
RecoveryIndex::anyPending(ReplayKind kind, const Slice &key) const
{
    for (const auto &seg : segments_) {
        if (seg.pending == 0)
            continue;
        for (const auto &f : seg.frames) {
            if (!f.replayed && matches(f, kind, key))
                return true;
        }
    }
    return false;
}

void
RecoveryIndex::collect(ReplayKind kind, const Slice &key,
                       size_t max_frames,
                       std::vector<FrameRef> *out) const
{
    for (size_t s = 0; s < segments_.size(); s++) {
        const Segment &seg = segments_[s];
        if (seg.pending == 0)
            continue;
        for (size_t i = 0; i < seg.frames.size(); i++) {
            if (out->size() >= max_frames)
                return;
            const Frame &f = seg.frames[i];
            if (!f.replayed && matches(f, kind, key))
                out->push_back(FrameRef{s, i});
        }
    }
}

void
RecoveryIndex::markReplayed(const FrameRef &ref, bool relog_ok)
{
    Segment &seg = segments_[ref.seg];
    Frame &f = seg.frames[ref.frame];
    if (f.replayed)
        return;
    f.replayed = true;
    seg.pending--;
    pending_frames_--;
    if (!relog_ok)
        seg.relog_ok = false;
}

std::vector<std::string>
RecoveryIndex::takeRemovableSegments()
{
    std::vector<std::string> out;
    for (auto &seg : segments_) {
        if (!seg.removed && seg.pending == 0 && seg.relog_ok) {
            seg.removed = true;
            out.push_back(seg.name);
        }
    }
    return out;
}

} // namespace mio::miodb
