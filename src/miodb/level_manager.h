/**
 * @file
 * The elastic multi-level NVM buffer (paper Sec. 4.1): levels hold an
 * unbounded deque of PMTables, so data flushing is never blocked by
 * compaction. Each level independently merges its two oldest tables
 * (zero-copy) and pushes the result down; the last buffer level
 * migrates tables into the data repository (lazy-copy).
 */
#ifndef MIO_MIODB_LEVEL_MANAGER_H_
#define MIO_MIODB_LEVEL_MANAGER_H_

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "miodb/pmtable.h"

namespace mio::miodb {

/** One elastic-buffer level. Thread safe. */
class BufferLevel
{
  public:
    /** Reader-visible state captured atomically. */
    struct Snapshot {
        /** Resident tables, newest first. */
        std::vector<std::shared_ptr<PMTable>> tables;
        /** In-flight zero-copy merge of the two oldest tables. */
        std::shared_ptr<MergeOp> merge;
        /** Table being lazy-copied to the repository (oldest). */
        std::shared_ptr<PMTable> migrating;
    };

    /** Append a table as the newest of this level. */
    void push(std::shared_ptr<PMTable> table);

    Snapshot snapshot() const;

    /** Resident table count (excluding merge pair / migrating). */
    size_t size() const;
    /** True when a merge or migration is in flight. */
    bool busy() const;

    /**
     * Claim the two oldest tables for a zero-copy merge; they leave
     * the deque but stay reader-visible through the returned MergeOp.
     * @return nullptr if fewer than two tables are resident or a merge
     * is already active.
     */
    std::shared_ptr<MergeOp> beginMerge();

    /** Retire a completed merge (result already pushed downstream). */
    void finishMerge(const std::shared_ptr<MergeOp> &op);

    /**
     * Claim the oldest table for lazy-copy migration; it stays
     * reader-visible until finishMigration.
     */
    std::shared_ptr<PMTable> beginMigration();
    void finishMigration();

    /** Total NVM bytes referenced by this level's tables. */
    size_t arenaBytes() const;

  private:
    mutable std::mutex mu_;
    std::deque<std::shared_ptr<PMTable>> tables_;  //!< front = oldest
    std::shared_ptr<MergeOp> merge_;
    std::shared_ptr<PMTable> migrating_;
};

/** The stack of elastic-buffer levels L0..L(n-1). */
class LevelManager
{
  public:
    explicit LevelManager(int num_levels) : levels_(num_levels) {}

    BufferLevel &level(int i) { return levels_[i]; }
    const BufferLevel &level(int i) const { return levels_[i]; }
    int numLevels() const { return static_cast<int>(levels_.size()); }

    /** True when every level is empty and no merge is in flight. */
    bool quiescent() const;

    /** Total resident PMTables across levels. */
    size_t totalTables() const;
    size_t totalArenaBytes() const;

  private:
    std::vector<BufferLevel> levels_;
};

} // namespace mio::miodb

#endif // MIO_MIODB_LEVEL_MANAGER_H_
