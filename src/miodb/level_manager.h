/**
 * @file
 * The elastic multi-level NVM buffer (paper Sec. 4.1): levels hold an
 * unbounded deque of PMTables, so data flushing is never blocked by
 * compaction. Each level independently merges its two oldest tables
 * (zero-copy) and pushes the result down; the last buffer level
 * migrates tables into the data repository (lazy-copy).
 */
#ifndef MIO_MIODB_LEVEL_MANAGER_H_
#define MIO_MIODB_LEVEL_MANAGER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "miodb/pmtable.h"

namespace mio::miodb {

/**
 * Immutable, epoch-published view of one buffer level. The single
 * compaction/flush writer of a level rebuilds this on every membership
 * change and installs it with one atomic pointer store; a reader under
 * the store's ReadGuard epoch loads the pointer once per lookup and
 * probes captured (never-mutated) bloom filters and key ranges with no
 * locks and no per-get refcount churn. Retired manifests go through
 * the same graveyard that already defers PMTable reclamation past
 * in-flight readers.
 */
struct LevelManifest {
    /** One member table with metadata captured at publish time. */
    struct TableRef {
        std::shared_ptr<PMTable> table;
        /** Filter frozen at capture; absorb() never mutates it. */
        std::shared_ptr<const BloomFilter> bloom;
        std::string min_key;
        std::string max_key;

        bool
        coversKey(const Slice &key) const
        {
            return Slice(min_key).compare(key) <= 0 &&
                   key.compare(Slice(max_key)) <= 0;
        }
    };

    /** Resident tables, newest first. */
    std::vector<TableRef> tables;

    /** In-flight zero-copy merge of the two oldest tables. */
    std::shared_ptr<MergeOp> merge;
    std::shared_ptr<const BloomFilter> merge_newt_bloom;
    std::shared_ptr<const BloomFilter> merge_oldt_bloom;

    /** Table being lazy-copied to the repository (oldest). */
    std::shared_ptr<PMTable> migrating;
    std::shared_ptr<const BloomFilter> migrating_bloom;
    std::string migrating_min;
    std::string migrating_max;

    /**
     * OR-merge of every member filter above (tables + merge pair +
     * migrating), or nullptr when summaries are disabled, the level is
     * empty, or member geometries diverge. One negative probe here
     * proves the key is in no member, so the whole level is skipped.
     */
    std::shared_ptr<const BloomFilter> summary;

    bool
    hasMembers() const
    {
        return !tables.empty() || merge != nullptr ||
               migrating != nullptr;
    }
};

/** One elastic-buffer level. Thread safe. */
class BufferLevel
{
  public:
    /** Reader-visible state captured atomically. */
    struct Snapshot {
        /** Resident tables, newest first. */
        std::vector<std::shared_ptr<PMTable>> tables;
        /** In-flight zero-copy merge of the two oldest tables. */
        std::shared_ptr<MergeOp> merge;
        /** Table being lazy-copied to the repository (oldest). */
        std::shared_ptr<PMTable> migrating;
    };

    BufferLevel();

    /** Append a table as the newest of this level. */
    void push(std::shared_ptr<PMTable> table);

    Snapshot snapshot() const;

    /**
     * Borrow the current manifest. Only valid under the owning store's
     * reader epoch (MioDB::ReadGuard): publication retires the old
     * manifest through the retire callback, which defers destruction
     * until no reader is in flight. Never nullptr.
     *
     * Lock-free readers must pair the epoch enter with a seq_cst fence
     * before the first load (MioDB does); see retireManifest's fence
     * for the store-buffering pairing.
     */
    const LevelManifest *
    acquireManifest() const
    {
        return published_.load(std::memory_order_acquire);
    }

    /** Owning reference to the current manifest (locked; for tests,
     *  scans, and anything outside the reader epoch). */
    std::shared_ptr<const LevelManifest> manifestSnapshot() const;

    /**
     * Route retired manifests to the owner's deferred-reclamation
     * path. Without a callback (standalone levels in unit tests) the
     * old manifest is destroyed on republish, which is only safe when
     * no concurrent acquireManifest() readers exist.
     */
    void setRetireCallback(
        std::function<void(std::shared_ptr<const void>)> cb);

    /**
     * Maintain the OR-merged summary filter on membership changes.
     * Off by default: tables built with bits_per_key <= 0 carry empty
     * dummy filters, and a summary over those would wrongly skip the
     * level for every key.
     */
    void enableBloomSummary(bool enabled);

    /** Resident table count (excluding merge pair / migrating). */
    size_t size() const;
    /** True when a merge or migration is in flight. */
    bool busy() const;

    /**
     * Claim the two oldest tables for a zero-copy merge; they leave
     * the deque but stay reader-visible through the returned MergeOp.
     * @return nullptr if fewer than two tables are resident, a merge
     * is already active, or either candidate is quarantined (a corrupt
     * table must stay pinned in place so reads covering it keep
     * answering corruption; consuming it would launder its entries).
     */
    std::shared_ptr<MergeOp> beginMerge();

    /** Retire a completed merge (result already pushed downstream). */
    void finishMerge(const std::shared_ptr<MergeOp> &op);

    /**
     * Claim the oldest table for lazy-copy migration; it stays
     * reader-visible until finishMigration. @return nullptr if a
     * migration is in flight, the level is empty, or the oldest table
     * is quarantined (see beginMerge).
     */
    std::shared_ptr<PMTable> beginMigration();
    /**
     * The migration already in flight, if any: a migration whose
     * repository merge failed transiently stays claimed, and the
     * level's compactor uses this to retry it.
     */
    std::shared_ptr<PMTable> migratingTable() const;
    void finishMigration();

    /** Total NVM bytes referenced by this level's tables. */
    size_t arenaBytes() const;

  private:
    /**
     * Rebuild + install the manifest from current membership. Caller
     * holds mu_. @p added, when non-null, is the filter of a table
     * just appended, letting the summary update with one OR instead
     * of a full rebuild.
     */
    void republishLocked(std::shared_ptr<const BloomFilter> added);
    /** OR of all member filters, or nullptr (caller holds mu_). */
    std::shared_ptr<const BloomFilter>
    buildSummaryLocked(const LevelManifest &m) const;

    mutable std::mutex mu_;
    std::deque<std::shared_ptr<PMTable>> tables_;  //!< front = oldest
    std::shared_ptr<MergeOp> merge_;
    std::shared_ptr<PMTable> migrating_;
    bool summary_enabled_ = false;
    /** Owning reference behind published_; replaced under mu_. */
    std::shared_ptr<const LevelManifest> current_;
    std::atomic<const LevelManifest *> published_;
    std::function<void(std::shared_ptr<const void>)> retire_;
};

/** The stack of elastic-buffer levels L0..L(n-1). */
class LevelManager
{
  public:
    explicit LevelManager(int num_levels) : levels_(num_levels) {}

    BufferLevel &level(int i) { return levels_[i]; }
    const BufferLevel &level(int i) const { return levels_[i]; }
    int numLevels() const { return static_cast<int>(levels_.size()); }

    /** True when every level is empty and no merge is in flight. */
    bool quiescent() const;

    /**
     * True while any level has a merge or migration in flight. Used
     * to gate exact accounting comparisons: an in-flight zero-copy
     * merge's absorb() co-owns arenas, so totalArenaBytes()
     * transiently double-counts until the merge finishes.
     */
    bool anyLevelBusy() const;

    /** Total resident PMTables across levels. */
    size_t totalTables() const;
    size_t totalArenaBytes() const;

  private:
    std::vector<BufferLevel> levels_;
};

} // namespace mio::miodb

#endif // MIO_MIODB_LEVEL_MANAGER_H_
