/**
 * @file
 * MioDB configuration. Defaults follow the paper's evaluation setup
 * scaled to simulation size (all sizes are overridable by benches).
 */
#ifndef MIO_MIODB_OPTIONS_H_
#define MIO_MIODB_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "lsm/version_set.h"

namespace mio::miodb {

struct MioOptions {
    /** DRAM MemTable capacity (paper: 64 MB; scaled default 1 MB). */
    size_t memtable_size = 1u << 20;

    /**
     * Number of elastic-buffer levels L0..L(n-1); the data repository
     * sits below them. The paper settles on 8 (Fig. 9). One compaction
     * thread serves each level when parallel compaction is on.
     */
    int elastic_levels = 8;

    /** Bloom filter bits per key (paper: 16). 0 disables filters. */
    int bits_per_key = 16;

    /** Max immutable MemTables queued before writers stall. */
    int max_immutable_memtables = 2;

    /**
     * Optional ceiling on the elastic buffer's NVM footprint (paper
     * Sec. 5.4 caps it at 64 GB for the Fig. 14 sweep). 0 = unlimited.
     * When the ceiling is hit, writers are throttled (a cumulative
     * stall) until compaction migrates tables to the repository.
     */
    uint64_t nvm_buffer_cap_bytes = 0;

    /** Ablations (paper Sec. 4 techniques, each individually toggleable). */
    bool one_piece_flush = true;   //!< false: NoveLSM-style per-node copy
    bool zero_copy_merge = true;   //!< false: copying merge in the buffer
    bool parallel_compaction = true; //!< false: one thread for all levels

    /**
     * When false, no compaction threads are started: flushed PMTables
     * stay where they (or a test/bench) put them, so a populated
     * multi-level buffer shape can be held static. Read-path benches
     * and manifest tests use this; production keeps it on.
     */
    bool auto_compaction = true;

    /**
     * Worker threads in the unified background scheduler (flush,
     * zero-copy / lazy-copy merges, SSD compaction, WAL recycling,
     * scrubbing all run there as typed jobs). 0 sizes the pool
     * automatically: elastic_levels + 2 with parallel compaction
     * (one slot per level plus flush and housekeeping, matching the
     * paper's thread-per-level design), 1 without, plus the SSD
     * tier's compaction_threads in hierarchy mode. Ignored when
     * deterministic_background is set.
     */
    int background_workers = 0;

    /**
     * Deterministic mode for the crash/failpoint harness: the
     * scheduler spawns no worker threads, and queued maintenance jobs
     * run inline -- in strict priority order -- on whichever thread
     * blocks on store progress (rotation stalls, waitIdle). One
     * thread of execution, fully reproducible interleavings.
     */
    bool deterministic_background = false;

    /** Write-ahead logging (required for crash consistency). */
    bool enable_wal = true;

    /**
     * Group commit (leader/follower write pipeline): concurrent
     * writers queue up and the front writer commits the whole group
     * with a single combined WAL record and one pass over the
     * MemTable, amortizing the per-record NVM latency across every
     * writer in the group. Disabling it degenerates each group to a
     * single writer (the pre-pipeline behaviour).
     */
    bool group_commit = true;

    /**
     * Ceiling on the WAL payload bytes one commit group may combine.
     * A larger budget amortizes more per-record cost but lengthens
     * the latency of the writers caught in a big group.
     */
    size_t max_group_bytes = 1u << 20;

    /**
     * DRAM-NVM-SSD mode (paper Sec. 5.4): the data repository becomes
     * a leveled LSM of SSTables on the SSD instead of a huge PMTable.
     */
    bool use_ssd_repository = false;
    lsm::LsmOptions ssd_lsm;  //!< geometry of the SSD-mode repository

    /**
     * Blob-name namespace for this instance's SSD-resident files.
     * WAL segments and PMTables are namespaced per instance already
     * (each shard owns its WalRegistry and NvmState), but the
     * simulated SSD is one global name space: without a tag, two
     * shards both starting at table id 1 would write the same SSTable
     * names. ShardedMioDB stamps "s<i>/" here; standalone instances
     * leave it empty.
     */
    std::string shard_tag;

    // ---- media-fault tolerance (see DESIGN.md Sec. 5e) -------------

    /**
     * Verify the per-entry checksum on every NVM-resident hit
     * (PMTables and PM repository): a mismatch surfaces
     * Status::corruption instead of the corrupt or a stale value.
     * MemTable reads (DRAM, outside the modelled fault domain) are
     * not verified.
     */
    bool verify_read_checksums = true;

    /**
     * Background scrubber period in milliseconds; 0 disables the
     * scrubber thread. Each pass walks every PMTable, the data
     * repository and (SSD mode) all SSTables, verifies checksums and
     * quarantines corrupt tables.
     */
    uint64_t scrub_interval_ms = 0;

    /**
     * Scrub throttle: a pass paces itself so checksum verification
     * consumes at most this much media bandwidth (0 = unthrottled).
     * Keeps the scrubber's read traffic from competing with
     * foreground gets for memory bandwidth; see EXPERIMENTS.md for
     * the measured overhead.
     */
    uint64_t scrub_rate_mb_per_sec = 16;

    /**
     * NVM exhaustion watermarks, as fractions of the device's
     * capacity budget (NvmDevice::capacityBytes(); ignored when the
     * device has no budget). Above the soft watermark every write is
     * slowed by write_slowdown_micros and migration to the repository
     * is boosted; above the hard watermark writers stall (bounded by
     * write_stall_timeout_ms) and then receive Status::busy.
     */
    double nvm_soft_watermark = 0.85;
    double nvm_hard_watermark = 0.95;
    uint64_t write_slowdown_micros = 100;
    uint64_t write_stall_timeout_ms = 1000;

    // ---- key-value separation (see DESIGN.md Sec. 5i) --------------

    /**
     * Values of at least this many bytes are appended once to the
     * NVM value log at write time; the index structures (MemTable,
     * PMTables, SSTables) then carry a fixed-size ValuePointer instead
     * of the bytes, so flushes and compactions move pointers, not
     * payloads. 0 disables separation entirely (values stay inline).
     */
    size_t value_separation_threshold = 512;

    /**
     * Capacity of one value-log segment. Appends fill the head
     * segment and seal it when full; GC reclaims whole sealed
     * segments. Smaller segments reclaim at finer granularity but
     * cost more region allocations.
     */
    size_t vlog_segment_bytes = 4u << 20;

    /**
     * Garbage-collect a sealed segment once its live fraction
     * (live_bytes / segment_bytes) drops below this ratio. Surviving
     * values are relocated to the head segment; the emptied segment
     * is unlinked once no pinned snapshot can still reach it.
     * <= 0 disables GC.
     */
    double vlog_gc_trigger_ratio = 0.5;

    // ---- instant recovery (see DESIGN.md Sec. 5j) ------------------

    /**
     * Serve traffic while the WAL replays: open() only scans the
     * surviving segments' frame digests (min/max key, op count) into a
     * RecoveryIndex and returns; frames are applied incrementally by a
     * kWalReplay background job, and a get/scan that touches a
     * not-yet-replayed key range replays just the covering frames
     * on demand first. Off: open() replays the whole WAL before
     * returning (the pre-instant behaviour).
     */
    bool instant_recovery = false;

    /**
     * Frames one background replay pass applies before yielding the
     * writer queue (and its worker) back to foreground traffic.
     */
    size_t replay_batch_frames = 64;

    // ---- memory governor + DRAM read cache (DESIGN.md Sec. 5k) -----

    /**
     * DRAM budget for the read cache serving NVM/SSD-resident
     * entries (probed after the MemTable/immutables miss, before
     * descending the buffer levels). 0 disables the cache. Sharded
     * stores share one cache across all shards (keys are disjoint);
     * the budget is per shard and the shared cache gets the sum.
     */
    size_t read_cache_bytes = 0;

    /**
     * Self-tuning memory split: a periodic kMemTuner job shifts DRAM
     * between the MemTable budget and the read cache -- and adjusts
     * the NVM soft watermark -- from observed cache hit rates, write
     * stalls, and flush pressure. Rotation picks up the tuned
     * MemTable capacity; the cache is retargeted immediately.
     */
    bool adaptive_memory = false;

    /** kMemTuner cadence (ignored unless adaptive_memory). */
    uint64_t mem_tuner_interval_ms = 200;

    /**
     * Neither DRAM side (MemTable budget, read cache) may be tuned
     * below this fraction of their combined budget.
     */
    double dram_floor_fraction = 0.125;

    /**
     * Ceiling on total value-log segment capacity; appends that
     * would open a segment beyond it fail with Status::busy.
     * 0 = bounded only by the NVM device budget.
     */
    uint64_t vlog_budget_bytes = 0;
};

} // namespace mio::miodb

#endif // MIO_MIODB_OPTIONS_H_
