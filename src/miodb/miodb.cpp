#include "miodb/miodb.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "lsm/merging_iterator.h"
#include "miodb/one_piece_flush.h"
#include "sim/failpoint.h"
#include "util/clock.h"
#include "util/coding.h"

namespace mio::miodb {

namespace {

/** Iterator exposing a single skip-list node (the insertion mark). */
class SingleNodeIterator : public lsm::KVIterator
{
  public:
    explicit SingleNodeIterator(SkipList::Node *node) : node_(node)
    {
        if (node_ != nullptr) {
            appendInternalKey(&key_buf_, node_->key(), node_->seq,
                              node_->entryType());
        }
    }

    bool valid() const override { return node_ != nullptr && !done_; }
    void seekToFirst() override { done_ = false; checkEnd(); }
    void
    seek(const Slice &internal_key) override
    {
        done_ = false;
        if (node_ != nullptr &&
            compareInternalKey(Slice(key_buf_), internal_key) < 0) {
            done_ = true;
        }
        checkEnd();
    }
    void next() override { done_ = true; }
    Slice key() const override { return Slice(key_buf_); }
    Slice value() const override { return node_->value(); }

  private:
    void
    checkEnd()
    {
        if (node_ == nullptr)
            done_ = true;
    }

    SkipList::Node *node_;
    std::string key_buf_;
    bool done_ = false;
};

} // namespace

MioDB::MioDB(const MioOptions &options, sim::NvmDevice *nvm,
             sim::SsdDevice *ssd, wal::WalRegistry *wal_registry,
             std::shared_ptr<NvmState> state)
    : options_(options), nvm_(nvm), ssd_(ssd)
{
    assert(options_.elastic_levels >= 1);
    if (wal_registry != nullptr) {
        registry_ = wal_registry;
    } else {
        owned_registry_ = std::make_unique<wal::WalRegistry>();
        registry_ = owned_registry_.get();
    }

    if (state != nullptr) {
        assert(state->levels.numLevels() == options_.elastic_levels &&
               "NVM image level count must match the options");
        state_ = std::move(state);
    } else {
        state_ = std::make_shared<NvmState>(options_.elastic_levels);
    }
    if (state_->repo != nullptr) {
        // Adopted image: its repository must charge this instance,
        // and any worker machinery a SimCrash froze must restart.
        state_->repo->rebindStats(&stats_);
        state_->repo->recoverAfterCrash();
    } else {
        if (options_.use_ssd_repository) {
            assert(ssd_ != nullptr &&
                   "SSD repository mode requires an SsdDevice");
            state_->ssd_medium = std::make_unique<sim::SsdMedium>(ssd_);
            state_->repo = std::make_unique<SsdRepository>(
                options_.ssd_lsm, state_->ssd_medium.get(), &stats_);
        } else {
            state_->repo = std::make_unique<PmRepository>(nvm_, &stats_);
        }
    }

    // NvmState outlives any single MioDB instance, so per-instance
    // plumbing must be rebound on every open (like rebindStats above):
    // retired manifests route through THIS instance's reader epoch,
    // and the summary filters follow THIS instance's bloom config.
    // bits_per_key <= 0 builds empty dummy filters, whose OR would
    // wrongly skip whole levels -- summaries stay off there.
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel &bl = state_->levels.level(i);
        bl.setRetireCallback([this](std::shared_ptr<const void> m) {
            retireToGraveyard(std::move(m));
        });
        bl.enableBloomSummary(options_.bits_per_key > 0);
    }

    mem_ = std::make_shared<lsm::MemTable>(options_.memtable_size,
                                           /*rng_seed=*/0x11);
    if (options_.enable_wal) {
        mem_wal_id_ = state_->next_table_id.fetch_add(1);
        first_own_wal_id_ = mem_wal_id_;
        mem_wal_ = registry_->open(walName(mem_wal_id_), nvm_);
    }

    recoverInterruptedCompactions();

    // Background threads start before WAL replay: replay re-fills
    // MemTables and may rotate several times, which requires a live
    // flusher to drain the immutable queue.
    flush_thread_ = std::thread([this] { flushThreadLoop(); });
    if (!options_.auto_compaction) {
        // No compaction workers: levels hold whatever is pushed into
        // them (read-path benches/tests freeze the buffer shape).
    } else if (options_.parallel_compaction) {
        for (int i = 0; i < options_.elastic_levels; i++) {
            compaction_threads_.emplace_back(
                [this, i] { compactionThreadLoop(i); });
        }
    } else {
        compaction_threads_.emplace_back(
            [this] { singleCompactionThreadLoop(); });
    }
    if (options_.scrub_interval_ms > 0)
        scrub_thread_ = std::thread([this] { scrubThreadLoop(); });

    replayWal();
}

MioDB::~MioDB()
{
    if (!crashed_.load()) {
        // Clean shutdown: persist the active MemTable and drain.
        {
            std::lock_guard<std::mutex> wl(write_mu_);
            std::unique_lock<std::mutex> il(imm_mu_);
            if (mem_ && mem_->entryCount() > 0) {
                imms_.push_back(Immutable{mem_, mem_wal_id_});
                mem_.reset();
                mem_wal_.reset();
            }
        }
        sched_cv_.notify_all();
        {
            std::unique_lock<std::mutex> il(imm_mu_);
            // flush_blocked_: with the NVM budget exhausted the queue
            // cannot drain; stop waiting -- the data stays durable in
            // its WAL segments and replays on the next open.
            imm_cv_.wait(il, [this] {
                return imms_.empty() || crashed_.load() ||
                       flush_blocked_.load();
            });
        }
    }
    shutting_down_.store(true);
    sched_cv_.notify_all();
    imm_cv_.notify_all();
    scrub_cv_.notify_all();
    notifyCapWaiters();
    if (scrub_thread_.joinable())
        scrub_thread_.join();
    flush_thread_.join();
    for (auto &t : compaction_threads_)
        t.join();
    // The levels survive in NvmState; drop their references into this
    // dying instance (the next open rebinds its own).
    for (int i = 0; i < state_->levels.numLevels(); i++)
        state_->levels.level(i).setRetireCallback(nullptr);
    if (!crashed_.load() && options_.enable_wal && mem_wal_)
        registry_->remove(walName(mem_wal_id_));
}

void
MioDB::simulateCrash()
{
    onSimCrash();
}

void
MioDB::onSimCrash()
{
    crashed_.store(true);
    notifyCapWaiters();
    // Wake everything that could be parked on store progress: a leader
    // stalled in rotateMemTable, waitIdle callers, worker loops.
    sched_cv_.notify_all();
    imm_cv_.notify_all();
    idle_cv_.notify_all();
    scrub_cv_.notify_all();
}

void
MioDB::recoverInterruptedCompactions()
{
    // A crash can leave each level with an in-flight zero-copy merge
    // (pair claimed, insertion mark possibly set) and the last level
    // with an in-flight migration. Both are completed before serving:
    // the merge resumes from the persistent mark (Sec. 4.7), and the
    // migration re-runs -- lazy-copy is idempotent per key/sequence.
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel &bl = state_->levels.level(i);
        BufferLevel::Snapshot snap = bl.snapshot();
        if (snap.merge) {
            resumeZeroCopyMerge(snap.merge.get(), nvm_, &stats_);
            if (i + 1 < state_->levels.numLevels()) {
                state_->levels.level(i + 1).push(snap.merge->oldt);
                bl.finishMerge(snap.merge);
            } else {
                Status ms =
                    state_->repo->mergeTable(snap.merge->oldt.get());
                for (int retry = 0; !ms.isOk() && retry < 3; retry++) {
                    ms = state_->repo->mergeTable(
                        snap.merge->oldt.get());
                }
                // On persistent failure leave the merge published:
                // readers still reach oldt through the manifest, so
                // the level is wedged but no data is lost.
                if (ms.isOk())
                    bl.finishMerge(snap.merge);
            }
        }
        if (snap.migrating) {
            Status ms = state_->repo->mergeTable(snap.migrating.get());
            // On failure the migration stays in flight (still
            // readable); compactLevelOnce retries it once workers run.
            if (ms.isOk())
                bl.finishMigration();
        }
    }
}

std::string
MioDB::walName(uint64_t id) const
{
    char buf[32];
    snprintf(buf, sizeof(buf), "wal-%08llu",
             static_cast<unsigned long long>(id));
    return buf;
}

namespace {
constexpr char kWalTagSingle = 1;
constexpr char kWalTagBatch = 2;
} // namespace

Status
MioDB::appendWal(uint64_t seq, EntryType type, const Slice &key,
                 const Slice &value)
{
    std::string record;
    record.push_back(kWalTagSingle);
    putFixed64(&record, seq);
    record.push_back(static_cast<char>(type));
    putLengthPrefixedSlice(&record, key);
    putLengthPrefixedSlice(&record, value);
    Status s = mem_wal_->append(Slice(record));
    if (s.isOk()) {
        stats_.wal_bytes_written.fetch_add(record.size() + 8,
                                           std::memory_order_relaxed);
    }
    return s;
}

Status
MioDB::appendWalOps(const std::vector<OpRef> &ops, size_t from,
                    uint64_t first_seq)
{
    std::string record;
    const size_t n = ops.size() - from;
    if (n == 1) {
        // Singleton groups keep the compact single-op encoding.
        const OpRef &op = ops[from];
        record.reserve(op.key.size() + op.value.size() + 20);
        record.push_back(kWalTagSingle);
        putFixed64(&record, first_seq);
        record.push_back(static_cast<char>(op.type));
        putLengthPrefixedSlice(&record, op.key);
        putLengthPrefixedSlice(&record, op.value);
    } else {
        size_t payload = 16;
        for (size_t i = from; i < ops.size(); i++)
            payload += ops[i].key.size() + ops[i].value.size() + 11;
        record.reserve(payload);
        record.push_back(kWalTagBatch);
        putFixed64(&record, first_seq);
        putVarint32(&record, static_cast<uint32_t>(n));
        for (size_t i = from; i < ops.size(); i++) {
            record.push_back(static_cast<char>(ops[i].type));
            putLengthPrefixedSlice(&record, ops[i].key);
            putLengthPrefixedSlice(&record, ops[i].value);
        }
    }
    Status s = mem_wal_->append(Slice(record));
    if (s.isOk()) {
        stats_.wal_bytes_written.fetch_add(record.size() + 8,
                                           std::memory_order_relaxed);
    }
    return s;
}

void
MioDB::replayWal()
{
    auto names = registry_->list();
    std::sort(names.begin(), names.end());
    uint64_t max_seq = seq_.load();
    std::vector<std::string> replayed;
    // Only segments from BEFORE this instance replay; the fresh
    // segments this instance itself creates (including ones minted by
    // rotations during the replay) hold the re-logged copies and must
    // be neither replayed nor removed. Ids are monotonic and names
    // zero-padded, so a string compare is an id compare.
    const std::string own_floor = walName(first_own_wal_id_);
    bool relog_failed = false;
    for (const auto &name : names) {
        if (name >= own_floor)
            continue;  // a fresh segment of this instance
        auto segment = registry_->find(name);
        if (!segment)
            continue;
        wal::LogReader reader(segment.get());
        std::string record;
        while (reader.readRecord(&record))
            replayRecord(Slice(record), &max_seq, &relog_failed);
        if (reader.sawCorruption()) {
            stats_.wal_corrupt_frames.fetch_add(
                1, std::memory_order_relaxed);
        }
        replayed.push_back(name);
    }
    // If a re-log was denied (NVM budget), the old segments are the
    // only durable copy of some replayed records: keep them.
    if (!relog_failed) {
        for (const auto &name : replayed)
            registry_->remove(name);
    }
    seq_.store(max_seq);
}

void
MioDB::replayRecord(const Slice &record, uint64_t *max_seq,
                    bool *relog_failed)
{
    Slice input = record;
    if (input.size() < 10)
        return;
    char tag = input[0];
    input.removePrefix(1);
    uint64_t seq = decodeFixed64(input.data());
    input.removePrefix(8);

    auto apply = [&](uint64_t op_seq, EntryType type, const Slice &key,
                     const Slice &value) {
        // Insert first, re-log under the CURRENT segment second, so
        // the re-logged copy always lands in the segment paired with
        // the table that holds the entry. (Log-first could strand the
        // record in a segment that dies with the previous table's
        // flush when the insert triggers a rotation.)
        if (!mem_->add(key, op_seq, type, value)) {
            rotateMemTable();
            bool ok = mem_->add(key, op_seq, type, value);
            assert(ok && "replayed entry exceeds MemTable size");
            (void)ok;
        }
        if (options_.enable_wal &&
            !appendWal(op_seq, type, key, value).isOk()) {
            *relog_failed = true;
        }
        *max_seq = std::max(*max_seq, op_seq + 1);
    };

    if (tag == kWalTagSingle) {
        if (input.empty())
            return;
        auto type = static_cast<EntryType>(input[0]);
        input.removePrefix(1);
        Slice key, value;
        if (!getLengthPrefixedSlice(&input, &key) ||
            !getLengthPrefixedSlice(&input, &value)) {
            return;
        }
        apply(seq, type, key, value);
    } else if (tag == kWalTagBatch) {
        uint32_t count;
        if (!getVarint32(&input, &count))
            return;
        for (uint32_t i = 0; i < count; i++) {
            if (input.empty())
                return;
            auto type = static_cast<EntryType>(input[0]);
            input.removePrefix(1);
            Slice key, value;
            if (!getLengthPrefixedSlice(&input, &key) ||
                !getLengthPrefixedSlice(&input, &value)) {
                return;
            }
            apply(seq + i, type, key, value);
        }
    }
}

Status
MioDB::validateEntry(const Slice &key, const Slice &value) const
{
    if (key.empty())
        return Status::invalidArgument("empty key");
    // A node must fit a fresh MemTable (header + max-height links).
    size_t worst_node = sizeof(SkipList::Node) +
                        SkipList::kMaxHeight * sizeof(void *) +
                        key.size() + value.size() + 256;
    if (worst_node > options_.memtable_size)
        return Status::invalidArgument("entry exceeds MemTable size");
    return Status::ok();
}

void
MioDB::applyBufferCap()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    auto overCap = [this] {
        return state_->levels.totalArenaBytes() >
               options_.nvm_buffer_cap_bytes;
    };
    if (!overCap())
        return;
    // Elastic-buffer ceiling reached: throttle until migration makes
    // room (counted as a cumulative stall, like the baselines').
    // Compaction workers signal cap_cv_ whenever the footprint drops;
    // the short wait_for is only a backstop for paths that shrink the
    // buffer without notifying.
    ScopedTimer stall(&stats_.cumulative_stall_ns);
    std::unique_lock<std::mutex> cl(cap_mu_);
    while (overCap() && !shutting_down_.load() && !crashed_.load()) {
        sched_cv_.notify_all();
        cap_cv_.wait_for(cl, std::chrono::milliseconds(1));
    }
}

bool
MioDB::nvmOverSoftWatermark() const
{
    uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return false;
    return static_cast<double>(nvm_->meters().bytes_allocated) >
           options_.nvm_soft_watermark * static_cast<double>(cap);
}

Status
MioDB::applyNvmWatermarks()
{
    const uint64_t cap = nvm_->capacityBytes();
    if (cap == 0)
        return Status::ok();
    auto usage = [&] {
        return static_cast<double>(nvm_->meters().bytes_allocated) /
               static_cast<double>(cap);
    };
    // A parked flusher with a full immutable backlog is exhaustion
    // regardless of the usage fraction: a budget smaller than one
    // chunk ask denies allocations while bytes_allocated/cap still
    // sits below the watermarks. Without this, the next rotation
    // would wait forever on a backlog nothing can drain.
    auto flushWedged = [this] {
        if (!flush_blocked_.load())
            return false;
        std::lock_guard<std::mutex> il(imm_mu_);
        return static_cast<int>(imms_.size()) >
               options_.max_immutable_memtables;
    };
    double u = usage();
    if (u < options_.nvm_soft_watermark && !flushWedged())
        return Status::ok();
    // Urgency boost: migration toward the repository is what frees
    // NVM, so wake the compaction workers before throttling anyone.
    sched_cv_.notify_all();
    if (u < options_.nvm_hard_watermark && !flushWedged()) {
        stats_.write_slowdowns.fetch_add(1, std::memory_order_relaxed);
        ScopedTimer stall(&stats_.cumulative_stall_ns);
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.write_slowdown_micros));
        return Status::ok();
    }
    // Hard watermark (or wedged flusher): stall the leader (bounded)
    // waiting for migration/flush to make room, then fail the group
    // with busy -- callers see a clean retryable error, never an
    // abort.
    stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    ScopedTimer stall(&stats_.interval_stall_ns);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.write_stall_timeout_ms);
    std::unique_lock<std::mutex> cl(cap_mu_);
    while ((usage() >= options_.nvm_hard_watermark || flushWedged()) &&
           !shutting_down_.load() && !crashed_.load()) {
        if (std::chrono::steady_clock::now() >= deadline) {
            stats_.busy_rejections.fetch_add(
                1, std::memory_order_relaxed);
            return Status::busy("nvm hard watermark");
        }
        sched_cv_.notify_all();
        cap_cv_.wait_for(cl, std::chrono::milliseconds(1));
    }
    return Status::ok();
}

void
MioDB::notifyCapWaiters()
{
    if (options_.nvm_buffer_cap_bytes == 0)
        return;
    // Acquiring cap_mu_ orders this notify after any waiter's
    // predicate check, so a footprint drop cannot be missed.
    { std::lock_guard<std::mutex> cl(cap_mu_); }
    cap_cv_.notify_all();
}

Status
MioDB::writeImpl(Writer *w)
{
    if (crashed_.load())
        return Status::ioError("simulated crash: store is frozen");
    std::unique_lock<std::mutex> lock(write_mu_);
    writers_.push_back(w);
    while (!w->done && w != writers_.front())
        w->cv.wait(lock);
    if (w->done)
        return w->status;

    // This writer is the leader: claim followers (in queue order) up
    // to the group byte budget and reserve one contiguous sequence
    // block for every op in the group.
    std::vector<Writer *> group;
    group.push_back(w);
    size_t group_bytes = w->payload_bytes;
    uint64_t group_ops = w->op_count;
    if (options_.group_commit) {
        for (auto it = writers_.begin() + 1; it != writers_.end();
             ++it) {
            Writer *f = *it;
            if (group_bytes + f->payload_bytes >
                options_.max_group_bytes) {
                break;
            }
            group.push_back(f);
            group_bytes += f->payload_bytes;
            group_ops += f->op_count;
        }
    }
    uint64_t base_seq =
        seq_.fetch_add(group_ops, std::memory_order_relaxed);
    lock.unlock();

    // Commit outside write_mu_: leadership serializes this section
    // (only the queue front commits), and releasing the mutex lets
    // later writers enqueue meanwhile -- that window is what forms
    // the next group.
    applyBufferCap();
    Status s = applyNvmWatermarks();
    if (crashed_.load()) {
        s = Status::ioError("simulated crash: store is frozen");
    } else if (s.isOk()) {
        try {
            s = commitGroup(group, base_seq);
        } catch (const sim::SimCrash &crash) {
            // The leader hit an armed failpoint: freeze the store and
            // fail the whole group (no member may believe its op was
            // acknowledged -- recovery decides what survived).
            onSimCrash();
            s = Status::ioError(std::string("simulated crash at ") +
                                crash.point());
        }
    }

    lock.lock();
    for (Writer *member : group) {
        assert(writers_.front() == member);
        writers_.pop_front();
        if (member != w) {
            member->status = s;
            member->done = true;
            member->cv.notify_one();
        }
    }
    if (!writers_.empty())
        writers_.front()->cv.notify_one();
    return s;
}

Status
MioDB::commitGroup(const std::vector<Writer *> &group,
                   uint64_t base_seq)
{
    size_t total_ops = 0;
    for (const Writer *m : group)
        total_ops += m->op_count;
    std::vector<OpRef> ops;
    ops.reserve(total_ops);
    size_t user_bytes = 0;
    for (const Writer *m : group) {
        if (m->batch != nullptr) {
            for (const WriteBatch::Op &op : m->batch->ops()) {
                ops.push_back(
                    OpRef{op.type, Slice(op.key), Slice(op.value)});
            }
            user_bytes += m->batch->byteSize();
        } else {
            ops.push_back(OpRef{m->type, m->key, m->value});
            user_bytes += m->key.size() + m->value.size();
        }
    }

    uint64_t wal_appends = 0;
    if (options_.enable_wal) {
        // A crash before the combined record loses the WHOLE group; a
        // crash after it makes the whole group durable. Never partial.
        MIO_FAILPOINT("group.before_wal");
        Status ws = appendWalOps(ops, 0, base_seq);
        if (!ws.isOk())
            return ws;  // nothing applied: the group fails cleanly
        MIO_FAILPOINT("group.after_wal");
        wal_appends++;
    }
    for (size_t i = 0; i < ops.size(); i++) {
        const OpRef &op = ops[i];
        uint64_t seq = base_seq + i;
        // Crashing mid-apply loses only DRAM state; the WAL record
        // above already made the full group recoverable.
        MIO_FAILPOINT("group.apply_op");
        if (!mem_->add(op.key, seq, op.type, op.value)) {
            // The new MemTable's WAL segment must cover the rest of
            // the group (the old segment dies with the old table's
            // flush); replay tolerates the duplicate sequences. The
            // re-log runs inside the rotation, before the old table
            // becomes flushable, so no crash can tear the group.
            if (options_.enable_wal) {
                Status rs;
                rotateMemTable(
                    [&] { rs = appendWalOps(ops, i, seq); });
                if (!rs.isOk()) {
                    // NVM budget denied the re-log. The group prefix
                    // is applied and covered by the old segment; the
                    // remainder is applied nowhere -- report busy so
                    // every member treats the write as not committed.
                    return rs;
                }
                wal_appends++;
            } else {
                rotateMemTable();
            }
            bool ok = mem_->add(op.key, seq, op.type, op.value);
            assert(ok);
            (void)ok;
        }
    }

    stats_.user_bytes_written.fetch_add(user_bytes,
                                        std::memory_order_relaxed);
    stats_.groups_committed.fetch_add(1, std::memory_order_relaxed);
    stats_.group_writers.fetch_add(group.size(),
                                   std::memory_order_relaxed);
    if (options_.enable_wal && group.size() > wal_appends) {
        stats_.wal_appends_saved.fetch_add(group.size() - wal_appends,
                                           std::memory_order_relaxed);
    }
    stats_
        .group_size_hist[StatsCounters::groupSizeBucket(group.size())]
        .fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
}

void
MioDB::rotateMemTable(const std::function<void()> &relog)
{
    // Caller is the commit leader (or otherwise exclusive), so mem_
    // and the WAL handle can be swapped without write_mu_.
    std::unique_lock<std::mutex> il(imm_mu_);
    const std::shared_ptr<lsm::MemTable> old_mem = mem_;
    const uint64_t old_wal_id = mem_wal_id_;
    if (options_.enable_wal) {
        mem_wal_id_ = state_->next_table_id.fetch_add(1);
        mem_wal_ = registry_->open(walName(mem_wal_id_), nvm_);
    }
    // Re-log BEFORE the old table enters imms_: once it is there the
    // flusher may flush it and remove the old segment, and a crash
    // between that removal and the re-logged copy landing would tear
    // the group (prefix flushed, remainder nowhere).
    if (relog)
        relog();
    imms_.push_back(Immutable{old_mem, old_wal_id});
    // One-piece flushing is fast, but if the flusher falls behind the
    // writer must wait: this is the only stall MioDB can experience
    // (an interval stall in the paper's terminology).
    if (static_cast<int>(imms_.size()) >
        options_.max_immutable_memtables) {
        ScopedTimer stall(&stats_.interval_stall_ns);
        sched_cv_.notify_all();
        // flush_blocked_ escape: a flusher parked on NVM allocation
        // failure cannot drain the backlog, so waiting would deadlock
        // this (already half-committed) rotation. Proceed one table
        // over the limit; applyNvmWatermarks gates the NEXT group with
        // bounded-stall-then-busy while the flusher stays wedged.
        imm_cv_.wait(il, [this] {
            return static_cast<int>(imms_.size()) <=
                       options_.max_immutable_memtables ||
                   shutting_down_.load() || crashed_.load() ||
                   flush_blocked_.load();
        });
    }
    mem_ = std::make_shared<lsm::MemTable>(
        options_.memtable_size, /*rng_seed=*/state_->next_table_id.load() * 7 + 1);
    il.unlock();
    imm_cv_.notify_all();
    sched_cv_.notify_all();
    // The old segment still holds the rotated MemTable's records (it
    // is only removed after the flush lands), so a crash here simply
    // replays from both segments.
    MIO_FAILPOINT("wal.rotate.after_open");
}

Status
MioDB::put(const Slice &key, const Slice &value)
{
    Status valid = validateEntry(key, value);
    if (!valid.isOk())
        return valid;
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    Writer w;
    w.key = key;
    w.value = value;
    w.type = EntryType::kValue;
    w.payload_bytes = key.size() + value.size() + 16;
    return writeImpl(&w);
}

Status
MioDB::remove(const Slice &key)
{
    Status valid = validateEntry(key, Slice());
    if (!valid.isOk())
        return valid;
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    Writer w;
    w.key = key;
    w.type = EntryType::kDeletion;
    w.payload_bytes = key.size() + 16;
    return writeImpl(&w);
}

bool
MioDB::probeLevelManifest(const LevelManifest &m, const Slice &key,
                          uint64_t h1, uint64_t h2, std::string *value,
                          EntryType *type, uint64_t *seq,
                          bool use_bloom, bool *corrupt)
{
    if (!m.hasMembers())
        return false;
    const bool verify = options_.verify_read_checksums;
    if (m.summary != nullptr && !m.summary->mayContainHashes(h1, h2)) {
        // One probe proved the key is in no member table of this
        // level (OR-merged bits are a superset of every member's).
        stats_.bloom_summary_skips.fetch_add(1,
                                             std::memory_order_relaxed);
        return false;
    }
    for (const auto &ref : m.tables) {
        if (!ref.coversKey(key))
            continue;
        if (use_bloom && !ref.bloom->mayContainHashes(h1, h2)) {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        // A quarantined table that could hold the key poisons the
        // whole lookup: falling through to an older level would serve
        // a stale value as if it were current.
        if (ref.table->isQuarantined()) {
            *corrupt = true;
            return false;
        }
        // The descent walks NVM-resident nodes: charge media reads.
        nvm_->chargeRandomReads(
            sim::skipDescentDepth(ref.table->entryCount()));
        if (ref.table->list().get(key, value, type, seq, verify,
                                  corrupt)) {
            return true;
        }
        if (*corrupt)
            return false;
    }
    if (m.merge && m.merge->coversKey(key)) {
        bool may = !use_bloom ||
                   m.merge_newt_bloom->mayContainHashes(h1, h2) ||
                   m.merge_oldt_bloom->mayContainHashes(h1, h2);
        if (may) {
            if (m.merge->newt->isQuarantined() ||
                m.merge->oldt->isQuarantined()) {
                *corrupt = true;
                return false;
            }
            nvm_->chargeRandomReads(sim::skipDescentDepth(
                m.merge->newt->entryCount() +
                m.merge->oldt->entryCount()));
            if (mergeAwareGet(m.merge.get(), key, value, type, seq,
                              verify, corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;
        } else {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    if (m.migrating && Slice(m.migrating_min).compare(key) <= 0 &&
        key.compare(Slice(m.migrating_max)) <= 0) {
        if (!use_bloom || m.migrating_bloom->mayContainHashes(h1, h2)) {
            if (m.migrating->isQuarantined()) {
                *corrupt = true;
                return false;
            }
            nvm_->chargeRandomReads(
                sim::skipDescentDepth(m.migrating->entryCount()));
            if (m.migrating->list().get(key, value, type, seq, verify,
                                        corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;
        } else {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    return false;
}

bool
MioDB::lookupBufferAndRepo(const Slice &key, std::string *value,
                           EntryType *type, uint64_t *seq,
                           bool *corrupt)
{
    const bool use_bloom = options_.bits_per_key > 0;
    // Hash once; every filter probe on this path reuses the pair.
    const auto [h1, h2] = BloomFilter::keyHashes(key);
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        const BufferLevel &bl = state_->levels.level(i);
        const LevelManifest *m = bl.acquireManifest();
        while (true) {
            if (probeLevelManifest(*m, key, h1, h2, value, type, seq,
                                   use_bloom, corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;  // never descend past damage
            // A miss is conclusive only if the manifest did not change
            // underneath the probe: a concurrent merge claim can move
            // a node out of a table after we searched it (and captured
            // filters go stale the same way). Publication happens
            // before any node moves, so rechecking the pointer after
            // the probe catches every such race; a reader that misses
            // for real sees a stable pointer and descends.
            const LevelManifest *now = bl.acquireManifest();
            if (now == m)
                break;
            m = now;
            stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return state_->repo->get(key, value, type, seq,
                             options_.verify_read_checksums, corrupt);
}

Status
MioDB::get(const Slice &key, std::string *value)
{
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    ReadGuard guard(this);

    std::shared_ptr<lsm::MemTable> mem;
    std::vector<std::shared_ptr<lsm::MemTable>> imms;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        mem = mem_;
        imms.reserve(imms_.size());
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            imms.push_back(it->mem);
    }

    EntryType type;
    if (mem && mem->get(key, value, &type)) {
        return type == EntryType::kValue ? Status::ok()
                                         : Status::notFound(key);
    }
    for (const auto &imm : imms) {
        if (imm->get(key, value, &type)) {
            return type == EntryType::kValue ? Status::ok()
                                             : Status::notFound(key);
        }
    }
    bool corrupt = false;
    if (lookupBufferAndRepo(key, value, &type, nullptr, &corrupt)) {
        return type == EntryType::kValue ? Status::ok()
                                         : Status::notFound(key);
    }
    if (corrupt) {
        stats_.corruptions_detected.fetch_add(
            1, std::memory_order_relaxed);
        return Status::corruption(key);
    }
    return Status::notFound(key);
}

Status
MioDB::scan(const Slice &start_key, int count,
            std::vector<std::pair<std::string, std::string>> *out)
{
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    out->clear();
    if (count <= 0) {
        // Nothing to return; don't build the full child-iterator
        // stack (one per memtable/table/merge participant) for an
        // empty result.
        return Status::ok();
    }
    ReadGuard guard(this);

    // Pin every source for the whole scan: the child iterators hold
    // raw list pointers, so the MemTable shared_ptrs and the per-level
    // snapshots (tables, merge ops, migrating tables) must outlive
    // the iteration, or a concurrent flush/merge could reclaim them
    // under the scan.
    std::vector<std::shared_ptr<lsm::MemTable>> pinned_mems;
    std::vector<BufferLevel::Snapshot> pinned_snaps;

    std::vector<std::unique_ptr<lsm::KVIterator>> children;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        if (mem_)
            pinned_mems.push_back(mem_);
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            pinned_mems.push_back(it->mem);
    }
    for (const auto &mem : pinned_mems) {
        children.push_back(
            std::make_unique<lsm::SkipListIterator>(&mem->list()));
    }
    for (int i = 0; i < state_->levels.numLevels(); i++)
        pinned_snaps.push_back(state_->levels.level(i).snapshot());
    size_t child_count = children.size() + 1;  // +1 for the repo
    for (const auto &snap : pinned_snaps) {
        child_count += snap.tables.size() + (snap.merge ? 3 : 0) +
                       (snap.migrating ? 1 : 0);
    }
    children.reserve(child_count);
    for (const auto &snap : pinned_snaps) {
        for (const auto &table : snap.tables) {
            children.push_back(std::make_unique<lsm::SkipListIterator>(
                &table->list()));
        }
        if (snap.merge) {
            children.push_back(std::make_unique<lsm::SkipListIterator>(
                &snap.merge->newt->list()));
            children.push_back(std::make_unique<SingleNodeIterator>(
                snap.merge->mark.load(std::memory_order_acquire)));
            children.push_back(std::make_unique<lsm::SkipListIterator>(
                &snap.merge->oldt->list()));
        }
        if (snap.migrating) {
            children.push_back(std::make_unique<lsm::SkipListIterator>(
                &snap.migrating->list()));
        }
    }
    children.push_back(state_->repo->newIterator());

    lsm::DedupingIterator iter(std::make_unique<lsm::MergingIterator>(
        std::move(children)));
    for (iter.seek(start_key); iter.valid() &&
                               static_cast<int>(out->size()) < count;
         iter.next()) {
        out->emplace_back(iter.key().toString(),
                          iter.value().toString());
    }
    return Status::ok();
}

Status
MioDB::write(const WriteBatch &batch)
{
    if (batch.empty())
        return Status::ok();
    for (const auto &op : batch.ops()) {
        Status valid = validateEntry(Slice(op.key), Slice(op.value));
        if (!valid.isOk())
            return valid;
        if (op.type == EntryType::kValue)
            stats_.puts.fetch_add(1, std::memory_order_relaxed);
        else
            stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    }

    Writer w;
    w.batch = &batch;
    w.op_count = batch.count();
    w.payload_bytes = batch.byteSize() + batch.count() * 11 + 16;
    return writeImpl(&w);
}

std::string
MioDB::debugString()
{
    std::string out = name() + " state:\n";
    char line[256];
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        snprintf(line, sizeof(line),
                 "  memtable: %llu entries (%zu/%zu bytes), %zu "
                 "immutable\n",
                 static_cast<unsigned long long>(
                     mem_ ? mem_->entryCount() : 0),
                 mem_ ? mem_->memoryUsed() : 0,
                 mem_ ? mem_->capacity() : 0, imms_.size());
        out += line;
    }
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        auto snap = state_->levels.level(i).snapshot();
        uint64_t entries = 0;
        for (const auto &t : snap.tables)
            entries += t->entryCount();
        snprintf(line, sizeof(line),
                 "  L%-2d: %zu tables, %llu entries%s%s\n", i,
                 snap.tables.size(),
                 static_cast<unsigned long long>(entries),
                 snap.merge ? ", merge in flight" : "",
                 snap.migrating ? ", migrating" : "");
        out += line;
    }
    snprintf(line, sizeof(line),
             "  repository: %llu entries\n  %s\n",
             static_cast<unsigned long long>(
                 state_->repo->entryCount()),
             snapshotOf(stats_).toString().c_str());
    out += line;
    return out;
}

void
MioDB::flushThreadLoop()
{
    sim::markSimBackgroundThread();
    for (;;) {
        Immutable imm;
        {
            std::unique_lock<std::mutex> il(imm_mu_);
            imm_cv_.notify_all();
            while (imms_.empty()) {
                if (shutting_down_.load())
                    return;
                // Reuse imm_mu_ for flush wakeups via a short poll so
                // a rotate that races the wait cannot be missed.
                imm_cv_.wait_for(il, std::chrono::milliseconds(5));
            }
            imm = imms_.front();
        }
        if (crashed_.load())
            return;

        try {
            uint64_t table_id = state_->next_table_id.fetch_add(1);
            std::shared_ptr<PMTable> table;
            if (options_.one_piece_flush) {
                table = onePieceFlush(imm.mem.get(), nvm_, &stats_,
                                      options_.bits_per_key, table_id);
            } else {
                table = nodeByNodeFlush(imm.mem.get(), nvm_, &stats_,
                                        options_.bits_per_key,
                                        table_id);
            }
            if (table == nullptr) {
                // NVM budget exhausted: leave the imm queued (its WAL
                // segment keeps it durable), nudge migration to free
                // space, and retry after a short backoff.
                flush_blocked_.store(true);
                imm_cv_.notify_all();
                sched_cv_.notify_all();
                // The top-of-loop shutdown check only runs when imms_
                // is empty; while wedged the queue never drains, so
                // the retry cycle must observe shutdown itself or the
                // destructor joins a flusher that spins forever.
                if (shutting_down_.load() || crashed_.load())
                    return;
                std::unique_lock<std::mutex> lock(sched_mu_);
                sched_cv_.wait_for(lock,
                                   std::chrono::milliseconds(10));
                continue;
            }
            flush_blocked_.store(false);
            stats_.flush_count.fetch_add(1, std::memory_order_relaxed);
            // A crash before the push loses the PMTable image but the
            // WAL segment survives (it is removed only below); after
            // the push, replay of the same segment merely re-inserts
            // entries that sequence-number dedup discards.
            MIO_FAILPOINT("flush.before_publish");
            state_->levels.level(0).push(std::move(table));
            MIO_FAILPOINT("flush.after_publish");

            {
                std::lock_guard<std::mutex> il(imm_mu_);
                if (!imms_.empty())
                    imms_.pop_front();
            }
            if (options_.enable_wal)
                registry_->remove(walName(imm.wal_id));
        } catch (const sim::SimCrash &) {
            onSimCrash();
            return;
        }
        imm_cv_.notify_all();
        sched_cv_.notify_all();
        idle_cv_.notify_all();
    }
}

bool
MioDB::compactLevelOnce(int level)
{
    BufferLevel &bl = state_->levels.level(level);
    const bool is_last = (level == options_.elastic_levels - 1);

    if (is_last) {
        std::shared_ptr<PMTable> victim = bl.beginMigration();
        if (!victim) {
            // A previous round's migration may have failed after its
            // table moved to the migrating slot; this level's single
            // compactor retries it here (mergeTable is idempotent per
            // key/sequence, the same property recovery relies on).
            victim = bl.migratingTable();
        }
        if (!victim)
            return false;
        // The migrating table stays readable in the level until
        // finishMigration; a crash anywhere in this window re-runs
        // the (idempotent) migration on reopen.
        MIO_FAILPOINT("lcm.before_publish");
        Status ms = state_->repo->mergeTable(victim.get());
        if (!ms.isOk()) {
            // Transient failure (SSD I/O error, NVM budget): leave
            // the migration in flight and retry next round after the
            // scheduler's backoff.
            return false;
        }
        MIO_FAILPOINT("lcm.after_publish");
        bl.finishMigration();
        MIO_FAILPOINT("lcm.before_reclaim");
        // Reclaim the whole arena chain (the lazy memory-freeing step
        // of Sec. 4.4) -- deferred past any in-flight readers.
        retireTable(std::move(victim));
        return true;
    }

    std::shared_ptr<MergeOp> op = bl.beginMerge();
    if (!op) {
        // Under buffer-cap pressure a level's single leftover table
        // can neither merge (needs a pair) nor migrate (not the last
        // level); demote it one level toward the repository so the
        // footprint can actually shrink below the cap.
        // NVM pressure above the soft watermark wants the same thing
        // the buffer cap does: push data toward the repository, which
        // is what actually frees device bytes (urgency boost).
        bool over_cap =
            (options_.nvm_buffer_cap_bytes != 0 &&
             state_->levels.totalArenaBytes() >
                 options_.nvm_buffer_cap_bytes) ||
            nvmOverSoftWatermark();
        if (over_cap && bl.size() == 1) {
            std::shared_ptr<PMTable> demoted = bl.beginMigration();
            if (demoted) {
                state_->levels.level(level + 1).push(demoted);
                bl.finishMigration();
                return true;
            }
        }
        return false;
    }
    if (options_.zero_copy_merge) {
        zeroCopyMerge(op.get(), nvm_, &stats_);
        // Publish the result downstream before retiring the merge so
        // readers never lose sight of the data.
        state_->levels.level(level + 1).push(op->oldt);
        bl.finishMerge(op);
    } else {
        uint64_t table_id = state_->next_table_id.fetch_add(1);
        auto result = copyingMerge(op->newt, op->oldt, nvm_, &stats_,
                                   table_id, options_.bits_per_key);
        if (result == nullptr) {
            // The NVM budget denied the copy target; degrade to the
            // allocation-free zero-copy merge instead of failing.
            zeroCopyMerge(op.get(), nvm_, &stats_);
            state_->levels.level(level + 1).push(op->oldt);
            bl.finishMerge(op);
            return true;
        }
        state_->levels.level(level + 1).push(std::move(result));
        bl.finishMerge(op);
    }
    return true;
}

void
MioDB::compactionThreadLoop(int level)
{
    sim::markSimBackgroundThread();
    while (!shutting_down_.load()) {
        bool worked = false;
        if (!crashed_.load()) {
            try {
                worked = compactLevelOnce(level);
            } catch (const sim::SimCrash &) {
                onSimCrash();
                return;
            }
        }
        if (worked) {
            notifyCapWaiters();
            sched_cv_.notify_all();
            idle_cv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(sched_mu_);
        idle_cv_.notify_all();
        sched_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
}

void
MioDB::singleCompactionThreadLoop()
{
    sim::markSimBackgroundThread();
    while (!shutting_down_.load()) {
        bool worked = false;
        if (!crashed_.load()) {
            try {
                for (int i = 0; i < options_.elastic_levels; i++)
                    worked = compactLevelOnce(i) || worked;
            } catch (const sim::SimCrash &) {
                onSimCrash();
                return;
            }
        }
        if (worked) {
            notifyCapWaiters();
            sched_cv_.notify_all();
            idle_cv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(sched_mu_);
        idle_cv_.notify_all();
        sched_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
}

void
MioDB::retireTable(std::shared_ptr<PMTable> table)
{
    retireToGraveyard(std::move(table));
}

void
MioDB::retireToGraveyard(std::shared_ptr<const void> retired)
{
    // Pairs with the fence in ReadGuard's constructor. The retired
    // object was unpublished before this call; if the load below
    // misses a reader's increment, that reader's first manifest /
    // snapshot load is guaranteed to observe the replacement
    // publication (the two seq_cst fences forbid both sides reading
    // stale), so the immediate drop can never free something a reader
    // can still reach.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (active_readers_.load(std::memory_order_acquire) == 0)
        return;
    std::lock_guard<std::mutex> lock(grave_mu_);
    graveyard_.push_back(std::move(retired));
}

void
MioDB::sweepGraveyard()
{
    std::vector<std::shared_ptr<const void>> doomed;
    {
        std::lock_guard<std::mutex> lock(grave_mu_);
        doomed.swap(graveyard_);
    }
    // Chains and manifests free here, outside the lock.
}

uint64_t
MioDB::scrubNow()
{
    ReadGuard guard(this);
    uint64_t corruptions = 0;
    uint64_t pm_bytes = 0;
    // Pace the pass to scrub_rate_mb_per_sec in 256 KiB chunks so the
    // scrubber never competes with foreground gets for a full memory
    // bandwidth share. The guard stays pinned across the sleeps --
    // acceptable because a paced pass only delays chain reclamation,
    // never readers. Shutdown aborts the pacing, not the walk.
    const uint64_t rate_bps = options_.scrub_rate_mb_per_sec << 20;
    uint64_t unpaced = 0;
    auto pace = [&](uint64_t bytes) {
        if (rate_bps == 0)
            return;
        unpaced += bytes;
        constexpr uint64_t kPaceChunk = 256u << 10;
        if (unpaced < kPaceChunk)
            return;
        if (!shutting_down_.load(std::memory_order_relaxed) &&
            !crashed_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(
                unpaced * 1000000000ull / rate_bps));
        }
        unpaced = 0;
    };
    // One table: walk the (possibly merge-entangled) level-0 chain and
    // verify every entry checksum. Quarantine on the first mismatch --
    // an entry cannot be trusted once its neighbours lied, and reads
    // covering the table must answer corruption, not maybe-stale data.
    auto scrubTable = [&](const std::shared_ptr<PMTable> &t) {
        if (t == nullptr || t->isQuarantined())
            return;
        uint64_t bad = 0;
        for (const SkipList::Node *n = t->list().first(); n != nullptr;
             n = n->next(0)) {
            const uint64_t entry_bytes =
                sizeof(SkipList::Node) + n->key_len + n->value_len;
            pm_bytes += entry_bytes;
            pace(entry_bytes);
            if (!n->checksumOk())
                bad++;
        }
        if (bad != 0) {
            t->quarantine();
            stats_.tables_quarantined.fetch_add(
                1, std::memory_order_relaxed);
            corruptions += bad;
        }
    };
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel::Snapshot snap = state_->levels.level(i).snapshot();
        for (const auto &t : snap.tables)
            scrubTable(t);
        if (snap.merge) {
            scrubTable(snap.merge->newt);
            scrubTable(snap.merge->oldt);
        }
        scrubTable(snap.migrating);
    }
    // Charging the walked bytes as media reads both keeps the meters
    // honest and throttles the scrubber under a real perf model.
    nvm_->chargeRead(pm_bytes);

    Repository::ScrubReport repo = state_->repo->scrub();
    // The repository reports its walked bytes in one lump; settle the
    // pacing debt after the fact (the burst is one repository scan).
    pace(repo.bytes);

    stats_.scrub_passes.fetch_add(1, std::memory_order_relaxed);
    stats_.scrub_bytes.fetch_add(pm_bytes + repo.bytes,
                                 std::memory_order_relaxed);
    stats_.tables_quarantined.fetch_add(repo.quarantined,
                                        std::memory_order_relaxed);
    corruptions += repo.corruptions;
    if (corruptions != 0) {
        stats_.corruptions_detected.fetch_add(
            corruptions, std::memory_order_relaxed);
    }
    return corruptions;
}

void
MioDB::scrubThreadLoop()
{
    sim::markSimBackgroundThread();
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!shutting_down_.load() && !crashed_.load()) {
        scrub_cv_.wait_for(
            lock,
            std::chrono::milliseconds(options_.scrub_interval_ms));
        if (shutting_down_.load() || crashed_.load())
            return;
        lock.unlock();
        scrubNow();
        lock.lock();
    }
}

void
MioDB::waitIdle()
{
    auto drained = [this] {
        {
            std::lock_guard<std::mutex> il(imm_mu_);
            // An exhausted NVM budget can pin the queue forever;
            // treat that as "as idle as the store can get".
            if (!imms_.empty() && !flush_blocked_.load())
                return false;
        }
        // Without compaction workers the buffer never drains further
        // than the flusher leaves it; idle == immutables flushed.
        return !options_.auto_compaction ||
               state_->levels.quiescent() || shutting_down_.load() ||
               crashed_.load();
    };
    // Wedge detection: an exhausted budget can leave levels that are
    // not quiescent yet can never drain (every migration retry is
    // denied allocation). If no background counter moves while the
    // device keeps denying allocations, further waiting would hang
    // every caller; the store is as idle as it can get.
    auto progress = [this] {
        return stats_.flush_count.load(std::memory_order_relaxed) +
               stats_.compaction_count.load(
                   std::memory_order_relaxed) +
               stats_.zero_copy_merges.load(
                   std::memory_order_relaxed) +
               stats_.lazy_copy_merges.load(std::memory_order_relaxed);
    };
    std::unique_lock<std::mutex> lock(sched_mu_);
    uint64_t last_progress = progress();
    uint64_t last_denials = nvm_->faultMeters().alloc_failures;
    int stagnant = 0;
    while (!drained()) {
        sched_cv_.notify_all();
        idle_cv_.wait_for(lock, std::chrono::milliseconds(20));
        const uint64_t p = progress();
        const uint64_t d = nvm_->faultMeters().alloc_failures;
        if (p != last_progress) {
            last_progress = p;
            stagnant = 0;
        } else if (d > last_denials && ++stagnant >= 25) {
            break;
        }
        last_denials = d;
    }
    lock.unlock();
    state_->repo->waitIdle();
}

} // namespace mio::miodb
