/**
 * @file
 * MioDB's foreground half: open/close, the WAL, the group-commit
 * write path, and the read paths. Background job bodies and the
 * scheduling glue live in maintenance.cpp.
 */
#include "miodb/miodb.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "lsm/db_iterator.h"
#include "lsm/merging_iterator.h"
#include "miodb/table_probe_iterator.h"
#include "miodb/wal_format.h"
#include "sim/failpoint.h"
#include "util/clock.h"
#include "util/coding.h"

namespace mio::miodb {

MioDB::MioDB(const MioOptions &options, sim::NvmDevice *nvm,
             sim::SsdDevice *ssd, wal::WalRegistry *wal_registry,
             std::shared_ptr<NvmState> state,
             sched::BackgroundScheduler *shared_scheduler,
             std::shared_ptr<mem::MemoryGovernor> governor,
             std::shared_ptr<mem::ReadCache> shared_cache)
    : options_(options), nvm_(nvm), ssd_(ssd)
{
    open_start_ns_ = nowNanos();
    assert(options_.elastic_levels >= 1);
    if (wal_registry != nullptr) {
        registry_ = wal_registry;
    } else {
        owned_registry_ = std::make_unique<wal::WalRegistry>();
        registry_ = owned_registry_.get();
    }

    if (state != nullptr) {
        assert(state->levels.numLevels() == options_.elastic_levels &&
               "NVM image level count must match the options");
        state_ = std::move(state);
    } else {
        state_ = std::make_shared<NvmState>(options_.elastic_levels);
    }

    // Memory governor: adopt the facade's (sharded mode -- it runs
    // the tuner and owns the stats sink) or build a private one.
    // Every charger below -- memtable rotation, buffer-arena install
    // boundaries, value-log segments, the read cache -- reserves from
    // it instead of keeping private counters.
    if (governor != nullptr) {
        governor_ = std::move(governor);
    } else {
        mem::MemoryGovernor::Config gc;
        gc.memtable_bytes = options_.memtable_size;
        gc.read_cache_bytes = options_.read_cache_bytes;
        gc.nvm_buffer_bytes = options_.nvm_buffer_cap_bytes;
        gc.vlog_budget_bytes = options_.vlog_budget_bytes;
        gc.nvm_soft_watermark = options_.nvm_soft_watermark;
        gc.nvm_hard_watermark = options_.nvm_hard_watermark;
        gc.adaptive = options_.adaptive_memory;
        gc.dram_floor_fraction = options_.dram_floor_fraction;
        gc.tuner_interval_ms = options_.mem_tuner_interval_ms;
        governor_ = std::make_shared<mem::MemoryGovernor>(gc, &stats_);
        owns_governor_ = true;
    }
    governor_->registerMemtableCharger();
    if (shared_cache != nullptr) {
        read_cache_ = std::move(shared_cache);
    } else if (options_.read_cache_bytes > 0) {
        read_cache_ = std::make_shared<mem::ReadCache>(
            options_.read_cache_bytes, governor_, &stats_);
    }

    // The scheduler exists before the repository: in SSD mode the
    // repository's LSM submits its compactions to this shared pool,
    // and WAL replay below may rotate MemTables, which needs a live
    // flush path.
    startScheduler(shared_scheduler);

    if (state_->repo != nullptr) {
        // Adopted image: its repository must charge this instance,
        // route background work through this instance's scheduler,
        // and any machinery a SimCrash froze must restart.
        state_->repo->rebindStats(&stats_);
        state_->repo->rebindScheduler(sched_);
        state_->repo->recoverAfterCrash();
    } else {
        if (options_.use_ssd_repository) {
            assert(ssd_ != nullptr &&
                   "SSD repository mode requires an SsdDevice");
            auto ssd_medium = std::make_unique<sim::SsdMedium>(ssd_);
            if (options_.shard_tag.empty()) {
                state_->ssd_medium = std::move(ssd_medium);
            } else {
                state_->ssd_medium =
                    std::make_unique<sim::PrefixedMedium>(
                        options_.shard_tag, std::move(ssd_medium));
            }
            state_->repo = std::make_unique<SsdRepository>(
                options_.ssd_lsm, state_->ssd_medium.get(), &stats_,
                sched_);
        } else {
            state_->repo = std::make_unique<PmRepository>(nvm_, &stats_);
        }
    }

    // Key-value separation: adopt the surviving value log (pointers in
    // the adopted PMTables/SSTables must stay resolvable) or create a
    // fresh one when separation is enabled. The drop hook decays
    // segment liveness as merges discard pointer versions.
    if (state_->vlog != nullptr) {
        state_->vlog->rebind(nvm_, &stats_);
        state_->vlog->recoverAfterCrash();
    } else if (options_.value_separation_threshold > 0) {
        state_->vlog = std::make_unique<ValueLog>(
            nvm_, &stats_, options_.vlog_segment_bytes);
    }
    if (state_->vlog != nullptr) {
        // Re-pointing the governor primes kVlog with the adopted
        // segments' capacity (and releases from a previous owner).
        // Pass shared ownership: if this ctor later throws (failpoint
        // crash mid-recovery), the dtor's detach never runs, and this
        // reference is all that keeps the charged governor alive for
        // the next open's rebind to drain.
        state_->vlog->rebindGovernor(governor_);
    }
    if (state_->vlog != nullptr) {
        state_->repo->setDropNotify(
            [this](EntryType t, const Slice &v) { noteDropped(t, v); });
    }

    // NvmState outlives any single MioDB instance, so per-instance
    // plumbing must be rebound on every open (like rebindStats above):
    // retired manifests route through THIS instance's reader epoch,
    // and the summary filters follow THIS instance's bloom config.
    // bits_per_key <= 0 builds empty dummy filters, whose OR would
    // wrongly skip whole levels -- summaries stay off there.
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        BufferLevel &bl = state_->levels.level(i);
        bl.setRetireCallback([this](std::shared_ptr<const void> m) {
            retireToGraveyard(std::move(m));
        });
        bl.enableBloomSummary(options_.bits_per_key > 0);
    }

    mem_ = makeMemTable(/*rng_seed=*/0x11);
    if (options_.enable_wal) {
        mem_wal_id_ = state_->next_table_id.fetch_add(1);
        first_own_wal_id_ = mem_wal_id_;
        mem_wal_ = registry_->open(walName(mem_wal_id_), nvm_);
    }

    // Instant recovery: index the surviving frames BEFORE interrupted
    // compactions resume -- their merges must already run under the
    // floored keep_seq (an un-replayed frame's ops have to order
    // against every version a merge might otherwise drop).
    const bool instant =
        options_.instant_recovery && options_.enable_wal;
    if (instant)
        buildRecoveryIndex();

    // Interrupted compactions complete in the foreground, before any
    // reads or background jobs can observe the half-merged levels; a
    // SimCrash here propagates out of the constructor as before.
    recoverInterruptedCompactions();

    // Prime the buffer sub-budget with the adopted image's footprint
    // (now stable: interrupted merges are resolved, and replay below
    // charges its flushes incrementally). A fresh store charges 0.
    chargeNvmBuffer(state_->levels.totalArenaBytes());

    if (options_.scrub_interval_ms > 0) {
        scrub_job_id_ = sched_->submitPeriodic(
            sched::JobClass::kScrub, options_.scrub_interval_ms,
            [this] {
                if (!shutting_down_.load() && !crashed_.load())
                    scrubNow();
            });
    }

    // Self-tuning memory split (standalone mode only: a shared
    // governor's facade runs one tuner over aggregated signals).
    if (owns_governor_ && options_.adaptive_memory) {
        tuner_job_id_ = sched_->submitPeriodic(
            sched::JobClass::kMemTuner, options_.mem_tuner_interval_ms,
            [this] {
                if (!shutting_down_.load() && !crashed_.load())
                    memTunerPass();
            });
    }

    if (instant) {
        if (recovery_pending_frames_.load(std::memory_order_acquire) >
            0) {
            scheduleWalReplay();
        }
    } else {
        replayWal();
    }
    const bool drained =
        recovery_pending_frames_.load(std::memory_order_acquire) == 0;
    if (drained) {
        // Clear a reclaim gate a crashed instant-recovery run may have
        // left behind (the repository outlives store instances). Vlog
        // GC unlocks only here -- its relocations need the commit
        // path, and during instant recovery an un-replayed frame may
        // still reference a segment that looks dead.
        state_->repo->setTombstoneReclaim(true);
        vlog_gc_enabled_.store(true, std::memory_order_release);
    }
    // Prime the pipeline: an adopted image (or the replay) may have
    // left flushable immutables and mergeable levels behind.
    kickMaintenance();
    const uint64_t ready_ms =
        (nowNanos() - open_start_ns_) / 1000000;
    stats_.recovery_ms_to_ready.store(ready_ms,
                                      std::memory_order_relaxed);
    if (drained) {
        stats_.recovery_ms_to_drained.store(ready_ms,
                                            std::memory_order_relaxed);
    }
}

MioDB::~MioDB()
{
    // Quiesce background replay FIRST: its job writes through the
    // commit path, and a drain completing after the vlog-GC disable
    // below would re-enable GC behind the shutdown's back. Pausing
    // (not draining) is safe -- un-replayed segments stay in the
    // registry and replay on the next open.
    replay_paused_.store(true, std::memory_order_release);
    if (!crashed_.load() && options_.instant_recovery &&
        options_.enable_wal) {
        sched::WaitOptions wo;
        wo.kick = [this] { sched_->notifyEvent(); };
        wo.tick_ms = 2;
        sched_->waitUntil(
            [this] {
                return (!replay_scheduled_.load() &&
                        sched_->queued(sched::JobClass::kWalReplay) ==
                            0 &&
                        sched_->running(sched::JobClass::kWalReplay) ==
                            0) ||
                       crashed_.load() || sched_->frozen();
            },
            wo);
    }
    // GC relocations write through the commit path; stop new GC
    // submissions and drain any in-flight job BEFORE the active
    // MemTable/WAL handles are torn down below.
    vlog_gc_enabled_.store(false, std::memory_order_release);
    if (!crashed_.load() && state_->vlog != nullptr) {
        sched::WaitOptions wo;
        wo.kick = [this] { sched_->notifyEvent(); };
        wo.tick_ms = 2;
        sched_->waitUntil(
            [this] {
                return (!vlog_gc_scheduled_.load() &&
                        sched_->queued(sched::JobClass::kVlogGc) == 0 &&
                        sched_->running(sched::JobClass::kVlogGc) ==
                            0) ||
                       crashed_.load() || sched_->frozen();
            },
            wo);
    }
    if (!crashed_.load()) {
        // Clean shutdown: persist the active MemTable and drain.
        {
            std::lock_guard<std::mutex> wl(write_mu_);
            std::lock_guard<std::mutex> il(imm_mu_);
            if (mem_ && mem_->entryCount() > 0) {
                imms_.push_back(Immutable{mem_, mem_wal_id_});
                mem_.reset();
                mem_wal_.reset();
            }
        }
        scheduleFlush();
        // flush_blocked_: with the NVM budget exhausted the queue
        // cannot drain; stop waiting -- the data stays durable in
        // its WAL segments and replays on the next open.
        sched_->waitUntil([this] {
            std::lock_guard<std::mutex> il(imm_mu_);
            return imms_.empty() || crashed_.load() ||
                   flush_blocked_.load() || sched_->frozen();
        });
    }
    shutting_down_.store(true);
    sched_->notifyEvent();
    if (scrub_job_id_ != 0)
        sched_->cancelPeriodic(scrub_job_id_);
    if (tuner_job_id_ != 0)
        sched_->cancelPeriodic(tuner_job_id_);
    if (owned_sched_ != nullptr) {
        // Clean shutdown runs the already-queued jobs (flush/compaction
        // bodies see shutting_down_ and finish fast; WAL recycling runs
        // for real); after a crash everything queued is dropped.
        sched_->shutdown(/*run_pending=*/!crashed_.load());
    } else if (!crashed_.load()) {
        // Shared pool, clean close: the pool belongs to the facade and
        // other shards may still be using it, so quiesce only THIS
        // shard's streams. The tokens cover flush/compaction (queued,
        // running, or backoff-delayed -- retries fire within 10 ms,
        // see shutting_down_, and release their token without
        // resubmitting). Scrub/SSD/WAL-recycle jobs carry no token;
        // their class counters are pool-global, which over-waits but
        // terminates (none of those bodies retry-loop).
        auto idle = [this](sched::JobClass c) {
            return sched_->queued(c) == 0 && sched_->running(c) == 0;
        };
        sched::WaitOptions wo;
        // Token releases on the drop path don't bump the event
        // sequence themselves; tick so the predicate re-checks.
        wo.kick = [this] { sched_->notifyEvent(); };
        wo.tick_ms = 2;
        sched_->waitUntil(
            [&] {
                if (flush_scheduled_.load() ||
                    vlog_gc_scheduled_.load()) {
                    return false;
                }
                for (int i = 0; i < options_.elastic_levels; i++) {
                    if (compact_scheduled_[i].load())
                        return false;
                }
                return idle(sched::JobClass::kScrub) &&
                       idle(sched::JobClass::kSsdCompaction) &&
                       idle(sched::JobClass::kWalRecycle) &&
                       idle(sched::JobClass::kVlogGc);
            },
            wo);
    }
    // Shared pool after a crash: frozen, nothing queued (freeze
    // dropped it), and the facade joins the workers before shards are
    // destroyed -- nothing left references this instance.
    // The levels survive in NvmState; drop their references into this
    // dying instance (the next open rebinds its own), and detach the
    // repository from the pool that just went away.
    for (int i = 0; i < state_->levels.numLevels(); i++)
        state_->levels.level(i).setRetireCallback(nullptr);
    state_->repo->setDropNotify(nullptr);
    state_->repo->rebindScheduler(nullptr);
    // The value log survives in NvmState; this instance's governor
    // does not. Detach (releasing kVlog) before the books close.
    if (state_->vlog != nullptr)
        state_->vlog->rebindGovernor(nullptr);
    if (!crashed_.load() && options_.enable_wal && mem_wal_)
        registry_->remove(walName(mem_wal_id_));
#ifndef NDEBUG
    {
        // A snapshot outliving its store keeps the NvmState alive
        // (its pins stay safe to read), but a pin still registered
        // here is almost certainly a forgotten releaseSnapshot --
        // reclamation stayed gated for the store's whole life.
        std::lock_guard<std::mutex> sl(snap_mu_);
        assert(live_snapshots_.empty() &&
               "snapshot leak: getSnapshot without releaseSnapshot");
    }
#endif
}

std::string
MioDB::walName(uint64_t id) const
{
    char buf[32];
    snprintf(buf, sizeof(buf), "wal-%08llu",
             static_cast<unsigned long long>(id));
    return buf;
}

Status
MioDB::appendWal(uint64_t seq, EntryType type, const Slice &key,
                 const Slice &value)
{
    std::string record;
    record.push_back(kWalTagSingle);
    putFixed64(&record, seq);
    record.push_back(static_cast<char>(type));
    putLengthPrefixedSlice(&record, key);
    putLengthPrefixedSlice(&record, value);
    Status s = mem_wal_->append(Slice(record));
    if (s.isOk()) {
        stats_.wal_bytes_written.fetch_add(record.size() + 8,
                                           std::memory_order_relaxed);
    }
    return s;
}

Status
MioDB::appendWalOps(const std::vector<OpRef> &ops, size_t from,
                    uint64_t first_seq)
{
    std::string record;
    const size_t n = ops.size() - from;
    if (n == 0) {
        // A lone GC relocation whose probe lost to a user write
        // commits an empty group: nothing to log (the digest header
        // below would read ops[from] out of bounds).
        return Status::ok();
    }
    if (n == 1) {
        // Singleton groups keep the compact single-op encoding.
        const OpRef &op = ops[from];
        record.reserve(op.key.size() + op.value.size() + 20);
        record.push_back(kWalTagSingle);
        putFixed64(&record, first_seq);
        record.push_back(static_cast<char>(op.type));
        putLengthPrefixedSlice(&record, op.key);
        putLengthPrefixedSlice(&record, op.value);
    } else {
        // Batch records carry a digest header (min/max key, op count)
        // so the instant-recovery index scan learns the frame's key
        // coverage without walking its payload. Singles need none:
        // their key sits in the fixed prefix already.
        size_t payload = 16;
        Slice min_key = ops[from].key;
        Slice max_key = ops[from].key;
        for (size_t i = from; i < ops.size(); i++) {
            payload += ops[i].key.size() + ops[i].value.size() + 11;
            if (ops[i].key.compare(min_key) < 0)
                min_key = ops[i].key;
            if (ops[i].key.compare(max_key) > 0)
                max_key = ops[i].key;
        }
        record.reserve(payload + min_key.size() + max_key.size() + 12);
        record.push_back(kWalTagDigest);
        putLengthPrefixedSlice(&record, min_key);
        putLengthPrefixedSlice(&record, max_key);
        putVarint32(&record, static_cast<uint32_t>(n));
        record.push_back(kWalTagBatch);
        putFixed64(&record, first_seq);
        putVarint32(&record, static_cast<uint32_t>(n));
        for (size_t i = from; i < ops.size(); i++) {
            record.push_back(static_cast<char>(ops[i].type));
            putLengthPrefixedSlice(&record, ops[i].key);
            putLengthPrefixedSlice(&record, ops[i].value);
        }
    }
    Status s = mem_wal_->append(Slice(record));
    if (s.isOk()) {
        stats_.wal_bytes_written.fetch_add(record.size() + 8,
                                           std::memory_order_relaxed);
    }
    return s;
}

void
MioDB::replayWal()
{
    auto names = registry_->list();
    std::sort(names.begin(), names.end());
    uint64_t max_seq = seq_.load();
    std::vector<std::string> replayed;
    // Only segments from BEFORE this instance replay; the fresh
    // segments this instance itself creates (including ones minted by
    // rotations during the replay) hold the re-logged copies and must
    // be neither replayed nor removed. Ids are monotonic and names
    // zero-padded, so a string compare is an id compare.
    const std::string own_floor = walName(first_own_wal_id_);
    bool relog_failed = false;
    for (const auto &name : names) {
        if (name >= own_floor)
            continue;  // a fresh segment of this instance
        auto segment = registry_->find(name);
        if (!segment)
            continue;
        wal::LogReader reader(segment.get());
        std::string record;
        while (reader.readRecord(&record))
            replayRecord(Slice(record), &max_seq, &relog_failed);
        if (reader.sawCorruption()) {
            stats_.wal_corrupt_frames.fetch_add(
                1, std::memory_order_relaxed);
        }
        replayed.push_back(name);
    }
    // If a re-log was denied (NVM budget), the old segments are the
    // only durable copy of some replayed records: keep them.
    if (!relog_failed) {
        for (const auto &name : replayed)
            registry_->remove(name);
    }
    seq_.store(max_seq);
    // Everything replayed is committed by definition (max_seq is the
    // next sequence to allocate, so the watermark sits one below).
    visible_seq_.store(max_seq - 1, std::memory_order_release);
}

void
MioDB::replayRecord(const Slice &record, uint64_t *max_seq,
                    bool *relog_failed, bool skip_superseded)
{
    Slice input = record;
    if (input.size() < 10)
        return;
    if (input[0] == kWalTagDigest) {
        // Unwrap the digest header; the ops live in the inner record.
        WalDigest d;
        if (!parseWalDigest(input, &d))
            return;
        input = d.inner;
        if (input.size() < 10)
            return;
    }
    char tag = input[0];
    input.removePrefix(1);
    uint64_t seq = decodeFixed64(input.data());
    input.removePrefix(8);

    auto apply = [&](uint64_t op_seq, EntryType type, const Slice &key,
                     const Slice &value) {
        if (skip_superseded) {
            // See the declaration: out-of-order (on-demand) replay
            // must not slot an op under a version that already
            // superseded it. The probe runs under replay leadership,
            // like the GC relocation probes.
            std::string cur;
            EntryType cur_type = EntryType::kValue;
            uint64_t cur_seq = 0;
            bool corrupt = false;
            if (findNewestRaw(key, &cur, &cur_type, &cur_seq,
                              &corrupt) &&
                !corrupt && cur_seq >= op_seq) {
                *max_seq = std::max(*max_seq, op_seq + 1);
                return;
            }
        }
        // Insert first, re-log under the CURRENT segment second, so
        // the re-logged copy always lands in the segment paired with
        // the table that holds the entry. (Log-first could strand the
        // record in a segment that dies with the previous table's
        // flush when the insert triggers a rotation.)
        if (!mem_->add(key, op_seq, type, value)) {
            rotateMemTable();
            bool ok = mem_->add(key, op_seq, type, value);
            assert(ok && "replayed entry exceeds MemTable size");
            (void)ok;
        }
        if (options_.enable_wal &&
            !appendWal(op_seq, type, key, value).isOk()) {
            *relog_failed = true;
        }
        *max_seq = std::max(*max_seq, op_seq + 1);
    };

    if (tag == kWalTagSingle) {
        if (input.empty())
            return;
        auto type = static_cast<EntryType>(input[0]);
        input.removePrefix(1);
        Slice key, value;
        if (!getLengthPrefixedSlice(&input, &key) ||
            !getLengthPrefixedSlice(&input, &value)) {
            return;
        }
        apply(seq, type, key, value);
    } else if (tag == kWalTagBatch) {
        uint32_t count;
        if (!getVarint32(&input, &count))
            return;
        for (uint32_t i = 0; i < count; i++) {
            if (input.empty())
                return;
            auto type = static_cast<EntryType>(input[0]);
            input.removePrefix(1);
            Slice key, value;
            if (!getLengthPrefixedSlice(&input, &key) ||
                !getLengthPrefixedSlice(&input, &value)) {
                return;
            }
            apply(seq + i, type, key, value);
        }
    }
}

void
MioDB::buildRecoveryIndex()
{
    auto index = std::make_unique<RecoveryIndex>();
    uint64_t corrupt = 0;
    index->build(registry_, walName(first_own_wal_id_), nvm_,
                 &corrupt);
    if (corrupt != 0) {
        stats_.wal_corrupt_frames.fetch_add(corrupt,
                                            std::memory_order_relaxed);
    }
    const size_t pending = index->pendingFrames();
    if (pending == 0) {
        // Fresh store or empty survivors: discard the husks exactly
        // like the full replay would and stay in the drained state.
        for (const auto &name : index->takeRemovableSegments())
            registry_->remove(name);
        return;
    }
    // Publish the recovered sequence horizon NOW: a write accepted
    // before the frames replay must be ordered after every logged op,
    // or the replayed ops would supersede it. The committed watermark
    // moves with it -- those sequences ARE durably committed, their
    // bytes are just not materialized yet (which is exactly what the
    // on-demand hooks compensate for).
    const uint64_t max_seq = std::max(index->maxSeq(), seq_.load());
    seq_.store(max_seq);
    visible_seq_.store(max_seq - 1, std::memory_order_release);
    const uint64_t min_first = index->minFirstSeq();
    recovery_keep_floor_.store(min_first > 0 ? min_first - 1 : 0,
                               std::memory_order_release);
    state_->repo->setTombstoneReclaim(false);
    stats_.recovery_pending_segments.store(
        index->pendingSegments(), std::memory_order_relaxed);
    recovery_pending_frames_.store(pending, std::memory_order_release);
    {
        std::lock_guard<std::mutex> rl(recovery_mu_);
        recovery_index_ = std::move(index);
    }
}

Status
MioDB::ensureRecovered(ReplayKind kind, const Slice &key)
{
    if (recovery_pending_frames_.load(std::memory_order_acquire) == 0)
        return Status::ok();
    {
        std::lock_guard<std::mutex> rl(recovery_mu_);
        if (recovery_index_ == nullptr ||
            !recovery_index_->anyPending(kind, key)) {
            return Status::ok();
        }
    }
    // This op is blocked on un-replayed frames: escalate the
    // background job until its next batch lands, then claim exactly
    // the covering frames ourselves through the writer queue.
    replay_urgent_.store(true, std::memory_order_release);
    scheduleWalReplay();
    try {
        MIO_FAILPOINT("recovery.on_demand");
        Writer w;
        w.replay = kind;
        w.replay_key = key;
        w.op_count = 0;
        w.payload_bytes = 0;
        return writeImpl(&w);
    } catch (const sim::SimCrash &crash) {
        onSimCrash();
        return Status::ioError(std::string("simulated crash at ") +
                               crash.point());
    }
}

Status
MioDB::applyReplayWriter(Writer *w)
{
    std::vector<RecoveryIndex::FrameRef> refs;
    {
        std::lock_guard<std::mutex> rl(recovery_mu_);
        if (recovery_index_ == nullptr)
            return Status::ok();  // drained while this writer queued
        const size_t cap =
            w->replay == ReplayKind::kBatch
                ? std::max<size_t>(1, options_.replay_batch_frames)
                : std::numeric_limits<size_t>::max();
        recovery_index_->collect(w->replay, w->replay_key, cap, &refs);
    }
    const bool on_demand = w->replay != ReplayKind::kBatch;
    bool drained = false;
    for (const RecoveryIndex::FrameRef &ref : refs) {
        std::shared_ptr<wal::LogSegment> segment;
        wal::LogReader::Position pos;
        {
            std::lock_guard<std::mutex> rl(recovery_mu_);
            if (recovery_index_ == nullptr)
                break;
            // Memoized: an earlier selector already applied it. (Only
            // possible across leaderships -- collect() above and this
            // loop run under the same one.)
            if (recovery_index_->frame(ref).replayed)
                continue;
            segment = recovery_index_->segment(ref).segment;
            pos = recovery_index_->frame(ref).pos;
        }
        // A crash in here loses only DRAM progress: the frame stays in
        // its (un-removed) segment and replays again on the next open;
        // already-applied sequences dedup through the MemTable.
        MIO_FAILPOINT("wal.replay.frame");
        std::string record;
        wal::LogReader reader(segment.get());
        bool relog_ok = true;
        if (!reader.readAt(pos, &record)) {
            // Indexed frames passed their CRC at scan time, so damage
            // here is real media trouble: count it, drop the frame
            // (its bytes are unreplayable either way).
            stats_.wal_corrupt_frames.fetch_add(
                1, std::memory_order_relaxed);
        } else {
            uint64_t max_seq = 0;
            bool relog_failed = false;
            replayRecord(Slice(record), &max_seq, &relog_failed,
                         /*skip_superseded=*/true);
            relog_ok = !relog_failed;
        }
        uint64_t pending;
        {
            std::lock_guard<std::mutex> rl(recovery_mu_);
            if (recovery_index_ == nullptr)
                break;
            recovery_index_->markReplayed(ref, relog_ok);
            // A fully-replayed segment leaves the registry only when
            // every re-log landed durably; otherwise it stays as the
            // sole durable home of the records the re-log missed.
            for (const auto &name :
                 recovery_index_->takeRemovableSegments())
                registry_->remove(name);
            pending = recovery_index_->pendingFrames();
            stats_.recovery_pending_segments.store(
                recovery_index_->pendingSegments(),
                std::memory_order_relaxed);
        }
        recovery_pending_frames_.store(pending,
                                       std::memory_order_release);
        stats_.wal_frames_replayed.fetch_add(1,
                                             std::memory_order_relaxed);
        if (on_demand) {
            stats_.wal_frames_on_demand.fetch_add(
                1, std::memory_order_relaxed);
        }
        if (pending == 0) {
            drained = true;
            break;
        }
    }
    if (drained)
        finishReplayDrain();
    return Status::ok();
}

void
MioDB::finishReplayDrain()
{
    {
        std::lock_guard<std::mutex> rl(recovery_mu_);
        recovery_index_.reset();
    }
    // Order matters: lift the reclamation floor only after the last
    // frame's inserts are in -- from here merges may again drop
    // shadowed versions and bottom-level tombstones, and vlog GC may
    // again treat unreferenced segments as dead.
    recovery_keep_floor_.store(kMaxSequence, std::memory_order_release);
    state_->repo->setTombstoneReclaim(true);
    stats_.recovery_pending_segments.store(0, std::memory_order_relaxed);
    stats_.recovery_ms_to_drained.store(
        (nowNanos() - open_start_ns_) / 1000000,
        std::memory_order_relaxed);
    replay_urgent_.store(false, std::memory_order_release);
    if (!shutting_down_.load() &&
        !vlog_gc_enabled_.load(std::memory_order_acquire)) {
        vlog_gc_enabled_.store(true, std::memory_order_release);
        scheduleVlogGc();
    }
    sched_->notifyEvent();
}

uint64_t
MioDB::recoveryKeepSeq() const
{
    return recovery_keep_floor_.load(std::memory_order_acquire);
}

Status
MioDB::validateEntry(const Slice &key, const Slice &value) const
{
    if (key.empty())
        return Status::invalidArgument("empty key");
    // A node must fit a fresh MemTable (header + max-height links).
    size_t worst_node = sizeof(SkipList::Node) +
                        SkipList::kMaxHeight * sizeof(void *) +
                        key.size() + value.size() + 256;
    if (worst_node > options_.memtable_size)
        return Status::invalidArgument("entry exceeds MemTable size");
    return Status::ok();
}

Status
MioDB::writeImpl(Writer *w)
{
    if (crashed_.load())
        return Status::ioError("simulated crash: store is frozen");
    std::unique_lock<std::mutex> lock(write_mu_);
    if ((w->relocation || w->replay == ReplayKind::kBatch) &&
        !writers_.empty()) {
        // A GC relocation (or a background replay batch) never parks
        // on the writer queue: a parked job pins its pool worker while
        // the queue's leader may be waiting on a flush that needs that
        // very worker -- a cycle on small pools (and a guaranteed
        // deadlock when the job runs inline on the leader's own thread
        // in deterministic mode). Contention just means "retry later".
        return Status::busy("background writer: queue busy");
    }
    writers_.push_back(w);
    while (!w->done && w != writers_.front())
        w->cv.wait(lock);
    if (w->done)
        return w->status;

    if (w->replay != ReplayKind::kNone) {
        // Replay leader: no ops of its own, no sequence reservation --
        // it applies pending WAL frames under their ORIGINAL sequence
        // numbers. Leadership is what serializes frame application
        // against every user commit (and against other replay
        // writers), so no frame can be applied twice concurrently.
        lock.unlock();
        Status s;
        if (crashed_.load()) {
            s = Status::ioError("simulated crash: store is frozen");
        } else {
            try {
                s = applyReplayWriter(w);
            } catch (const sim::SimCrash &crash) {
                onSimCrash();
                s = Status::ioError(
                    std::string("simulated crash at ") + crash.point());
            }
        }
        lock.lock();
        assert(writers_.front() == w);
        writers_.pop_front();
        if (!writers_.empty())
            writers_.front()->cv.notify_one();
        return s;
    }

    // This writer is the leader: claim followers (in queue order) up
    // to the group byte budget and reserve one contiguous sequence
    // block for every op in the group.
    std::vector<Writer *> group;
    group.push_back(w);
    size_t group_bytes = w->payload_bytes;
    uint64_t group_ops = w->op_count;
    if (options_.group_commit) {
        for (auto it = writers_.begin() + 1; it != writers_.end();
             ++it) {
            Writer *f = *it;
            if (f->replay != ReplayKind::kNone) {
                // A replay writer commits alone (it has no group ops);
                // it leads once the writers ahead of it drain.
                break;
            }
            if (group_bytes + f->payload_bytes >
                options_.max_group_bytes) {
                break;
            }
            group.push_back(f);
            group_bytes += f->payload_bytes;
            group_ops += f->op_count;
        }
    }
    uint64_t base_seq =
        seq_.fetch_add(group_ops, std::memory_order_relaxed);
    lock.unlock();

    // Commit outside write_mu_: leadership serializes this section
    // (only the queue front commits), and releasing the mutex lets
    // later writers enqueue meanwhile -- that window is what forms
    // the next group.
    applyBufferCap();
    Status s = applyNvmWatermarks();
    if (crashed_.load()) {
        s = Status::ioError("simulated crash: store is frozen");
    } else if (s.isOk()) {
        try {
            s = commitGroup(group, base_seq);
        } catch (const sim::SimCrash &crash) {
            // The leader hit an armed failpoint: freeze the store and
            // fail the whole group (no member may believe its op was
            // acknowledged -- recovery decides what survived).
            onSimCrash();
            s = Status::ioError(std::string("simulated crash at ") +
                                crash.point());
        }
    }

    lock.lock();
    for (Writer *member : group) {
        assert(writers_.front() == member);
        writers_.pop_front();
        if (member != w) {
            member->status = s;
            member->done = true;
            member->cv.notify_one();
        }
    }
    if (!writers_.empty())
        writers_.front()->cv.notify_one();
    return s;
}

Status
MioDB::commitGroup(const std::vector<Writer *> &group,
                   uint64_t base_seq)
{
    size_t total_ops = 0;
    for (const Writer *m : group)
        total_ops += m->op_count;
    std::vector<OpRef> ops;
    ops.reserve(total_ops);
    size_t user_bytes = 0;
    for (Writer *m : group) {
        if (m->relocation) {
            // GC relocation: apply only while the key's newest
            // committed entry still carries the pointer being
            // replaced. Leadership serializes commits, so the probe
            // below cannot race another group; an earlier op of THIS
            // group writing the same key wins instead (it is not yet
            // visible to the probe).
            bool superseded = false;
            for (const OpRef &prior : ops) {
                if (prior.key == m->key) {
                    superseded = true;
                    break;
                }
            }
            if (!superseded) {
                std::string cur;
                EntryType t = EntryType::kValue;
                bool corrupt = false;
                bool found =
                    findNewestRaw(m->key, &cur, &t, nullptr, &corrupt);
                if (corrupt) {
                    // Unknown liveness: GC must not treat the old
                    // copy as dead (and must not unlink its segment).
                    m->relocation_outcome = Status::corruption(m->key);
                    continue;
                }
                ValuePointer vp;
                superseded = !found ||
                             t != EntryType::kValuePointer ||
                             !ValuePointer::decode(Slice(cur), &vp) ||
                             vp != m->expected_ptr;
            }
            if (superseded) {
                m->relocation_outcome = Status::notFound(m->key);
                continue;  // reserved seq stays unused -- benign gap
            }
            m->relocation_outcome = Status::ok();
            ops.push_back(
                OpRef{EntryType::kValuePointer, m->key, m->value});
            // Not a user write: no user_bytes (WA stays honest).
        } else if (m->batch != nullptr) {
            for (const WriteBatch::Op &op : m->batch->ops()) {
                ops.push_back(
                    OpRef{op.type, Slice(op.key), Slice(op.value)});
            }
            user_bytes += m->batch->byteSize();
        } else {
            ops.push_back(OpRef{m->type, m->key, m->value});
            user_bytes += m->key.size() + m->value.size();
        }
    }

    // Key-value separation: large values leave the group here, before
    // the WAL record -- each is appended (and persisted) to the value
    // log once, and the index path below carries only the fixed-size
    // encoded pointer. A crash between a vlog append and the WAL
    // record leaves an orphan log record; it is never indexed, so GC
    // reclaims it as dead. The deque keeps encodings stable while the
    // MemTable inserts below alias them.
    std::deque<std::string> pointer_arena;
    if (state_->vlog != nullptr &&
        options_.value_separation_threshold > 0) {
        for (OpRef &op : ops) {
            if (op.type != EntryType::kValue ||
                op.value.size() < options_.value_separation_threshold) {
                continue;
            }
            ValuePointer vp;
            Status vs = state_->vlog->append(op.key, op.value, &vp);
            if (!vs.isOk())
                return vs;  // nothing logged/applied: clean failure
            pointer_arena.emplace_back(vp.encode());
            op.type = EntryType::kValuePointer;
            op.value = Slice(pointer_arena.back());
        }
    }

    uint64_t wal_appends = 0;
    if (options_.enable_wal) {
        // A crash before the combined record loses the WHOLE group; a
        // crash after it makes the whole group durable. Never partial.
        MIO_FAILPOINT("group.before_wal");
        Status ws = appendWalOps(ops, 0, base_seq);
        if (!ws.isOk())
            return ws;  // nothing applied: the group fails cleanly
        MIO_FAILPOINT("group.after_wal");
        wal_appends++;
    }
    for (size_t i = 0; i < ops.size(); i++) {
        const OpRef &op = ops[i];
        uint64_t seq = base_seq + i;
        // Crashing mid-apply loses only DRAM state; the WAL record
        // above already made the full group recoverable.
        MIO_FAILPOINT("group.apply_op");
        if (!mem_->add(op.key, seq, op.type, op.value)) {
            // The new MemTable's WAL segment must cover the rest of
            // the group (the old segment dies with the old table's
            // flush); replay tolerates the duplicate sequences. The
            // re-log runs inside the rotation, before the old table
            // becomes flushable, so no crash can tear the group.
            if (options_.enable_wal) {
                Status rs;
                rotateMemTable(
                    [&] { rs = appendWalOps(ops, i, seq); });
                if (!rs.isOk()) {
                    // NVM budget denied the re-log. The group prefix
                    // is applied and covered by the old segment; the
                    // remainder is applied nowhere -- report busy so
                    // every member treats the write as not committed.
                    return rs;
                }
                wal_appends++;
            } else {
                rotateMemTable();
            }
            bool ok = mem_->add(op.key, seq, op.type, op.value);
            assert(ok);
            (void)ok;
        }
    }

    // The whole group is applied: publish the committed watermark.
    // Leadership serializes commits, so this only ever moves forward;
    // release pairs with getSnapshot's acquire -- a snapshot whose
    // bound covers these sequences also sees their MemTable inserts.
    visible_seq_.store(base_seq + total_ops - 1,
                       std::memory_order_release);

    stats_.user_bytes_written.fetch_add(user_bytes,
                                        std::memory_order_relaxed);
    stats_.groups_committed.fetch_add(1, std::memory_order_relaxed);
    stats_.group_writers.fetch_add(group.size(),
                                   std::memory_order_relaxed);
    if (options_.enable_wal && group.size() > wal_appends) {
        stats_.wal_appends_saved.fetch_add(group.size() - wal_appends,
                                           std::memory_order_relaxed);
    }
    stats_
        .group_size_hist[StatsCounters::groupSizeBucket(group.size())]
        .fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
}

void
MioDB::rotateMemTable(const std::function<void()> &relog)
{
    // Caller is the commit leader (or otherwise exclusive), so mem_
    // and the WAL handle can be swapped without write_mu_.
    std::unique_lock<std::mutex> il(imm_mu_);
    const std::shared_ptr<lsm::MemTable> old_mem = mem_;
    const uint64_t old_wal_id = mem_wal_id_;
    if (options_.enable_wal) {
        mem_wal_id_ = state_->next_table_id.fetch_add(1);
        mem_wal_ = registry_->open(walName(mem_wal_id_), nvm_);
    }
    // Re-log BEFORE the old table enters imms_: once it is there the
    // flusher may flush it and remove the old segment, and a crash
    // between that removal and the re-logged copy landing would tear
    // the group (prefix flushed, remainder nowhere).
    if (relog)
        relog();
    imms_.push_back(Immutable{old_mem, old_wal_id});
    const bool backlogged = static_cast<int>(imms_.size()) >
                            options_.max_immutable_memtables;
    // The wait below runs without imm_mu_ (the flush job needs it; in
    // deterministic mode the flush even runs inline on THIS thread).
    // mem_ still pointing at old_mem meanwhile is benign: leadership
    // is exclusive, and a reader that captures both mem_ and the
    // queued copy merely probes the same (live) table twice.
    il.unlock();
    scheduleFlush();
    // One-piece flushing is fast, but if the flusher falls behind the
    // writer must wait: this is the only stall MioDB can experience
    // (an interval stall in the paper's terminology).
    // A rotation driven by a job's own write (vlog GC relocation) in
    // deterministic mode cannot wait on the flush: nested waitUntil
    // on a job thread never assist-runs, so the backlog would not
    // drain. Proceed over the limit; the next user group absorbs it.
    const bool can_wait =
        !(sched_->deterministic() &&
          sched::BackgroundScheduler::inJob());
    if (backlogged && can_wait) {
        ScopedTimer stall(&stats_.interval_stall_ns);
        // flush_blocked_ escape: a flusher parked on NVM allocation
        // failure cannot drain the backlog, so waiting would deadlock
        // this (already half-committed) rotation. Proceed one table
        // over the limit; applyNvmWatermarks gates the NEXT group with
        // bounded-stall-then-busy while the flusher stays wedged.
        // sched_->frozen(): in shared-pool mode a sibling shard's
        // power failure freezes the pool before the facade marks this
        // shard crashed; the dropped flush could never drain the
        // backlog, so waiting on it would hang this rotation.
        sched_->waitUntil([this] {
            std::lock_guard<std::mutex> l(imm_mu_);
            return static_cast<int>(imms_.size()) <=
                       options_.max_immutable_memtables ||
                   shutting_down_.load() || crashed_.load() ||
                   flush_blocked_.load() || sched_->frozen();
        });
    }
    il.lock();
    mem_ = makeMemTable(
        /*rng_seed=*/state_->next_table_id.load() * 7 + 1);
    il.unlock();
    // The old segment still holds the rotated MemTable's records (it
    // is only removed after the flush lands), so a crash here simply
    // replays from both segments.
    MIO_FAILPOINT("wal.rotate.after_open");
}

std::shared_ptr<lsm::MemTable>
MioDB::makeMemTable(uint64_t seed)
{
    size_t cap = options_.memtable_size;
    if (options_.adaptive_memory)
        cap = governor_->memtableTargetBytes();
    // The deleter owns a governor reference: pinned snapshots can keep
    // a MemTable alive past this store object, and the charge must
    // follow the arena's actual lifetime, not the store's.
    auto gov = governor_;
    gov->charge(mem::SubBudget::kMemtableDram, cap);
    return std::shared_ptr<lsm::MemTable>(
        new lsm::MemTable(cap, seed), [gov, cap](lsm::MemTable *p) {
            delete p;
            gov->release(mem::SubBudget::kMemtableDram, cap);
        });
}

void
MioDB::chargeNvmBuffer(size_t bytes)
{
    if (bytes == 0)
        return;
    nvm_buffer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    governor_->charge(mem::SubBudget::kNvmBuffer, bytes);
}

void
MioDB::releaseNvmBuffer(size_t bytes)
{
    if (bytes == 0)
        return;
    nvm_buffer_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    governor_->release(mem::SubBudget::kNvmBuffer, bytes);
}

Status
MioDB::put(const Slice &key, const Slice &value)
{
    Status valid = validateEntry(key, value);
    if (!valid.isOk())
        return valid;
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    Writer w;
    w.key = key;
    w.value = value;
    w.type = EntryType::kValue;
    w.payload_bytes = key.size() + value.size() + 16;
    return writeImpl(&w);
}

Status
MioDB::remove(const Slice &key)
{
    Status valid = validateEntry(key, Slice());
    if (!valid.isOk())
        return valid;
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    Writer w;
    w.key = key;
    w.type = EntryType::kDeletion;
    w.payload_bytes = key.size() + 16;
    return writeImpl(&w);
}

bool
MioDB::probeLevelManifest(const LevelManifest &m, const Slice &key,
                          uint64_t h1, uint64_t h2, std::string *value,
                          EntryType *type, uint64_t *seq,
                          bool use_bloom, bool *corrupt)
{
    if (!m.hasMembers())
        return false;
    const bool verify = options_.verify_read_checksums;
    if (m.summary != nullptr && !m.summary->mayContainHashes(h1, h2)) {
        // One probe proved the key is in no member table of this
        // level (OR-merged bits are a superset of every member's).
        stats_.bloom_summary_skips.fetch_add(1,
                                             std::memory_order_relaxed);
        return false;
    }
    for (const auto &ref : m.tables) {
        if (!ref.coversKey(key))
            continue;
        if (use_bloom && !ref.bloom->mayContainHashes(h1, h2)) {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        // A quarantined table that could hold the key poisons the
        // whole lookup: falling through to an older level would serve
        // a stale value as if it were current.
        if (ref.table->isQuarantined()) {
            *corrupt = true;
            return false;
        }
        // The descent walks NVM-resident nodes: charge media reads.
        nvm_->chargeRandomReads(
            sim::skipDescentDepth(ref.table->entryCount()));
        if (ref.table->list().get(key, value, type, seq, verify,
                                  corrupt)) {
            return true;
        }
        if (*corrupt)
            return false;
    }
    if (m.merge && m.merge->coversKey(key)) {
        bool may = !use_bloom ||
                   m.merge_newt_bloom->mayContainHashes(h1, h2) ||
                   m.merge_oldt_bloom->mayContainHashes(h1, h2);
        if (may) {
            if (m.merge->newt->isQuarantined() ||
                m.merge->oldt->isQuarantined()) {
                *corrupt = true;
                return false;
            }
            nvm_->chargeRandomReads(sim::skipDescentDepth(
                m.merge->newt->entryCount() +
                m.merge->oldt->entryCount()));
            if (mergeAwareGet(m.merge.get(), key, value, type, seq,
                              verify, corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;
        } else {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    if (m.migrating && Slice(m.migrating_min).compare(key) <= 0 &&
        key.compare(Slice(m.migrating_max)) <= 0) {
        if (!use_bloom || m.migrating_bloom->mayContainHashes(h1, h2)) {
            if (m.migrating->isQuarantined()) {
                *corrupt = true;
                return false;
            }
            nvm_->chargeRandomReads(
                sim::skipDescentDepth(m.migrating->entryCount()));
            if (m.migrating->list().get(key, value, type, seq, verify,
                                        corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;
        } else {
            stats_.bloom_filter_skips.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    return false;
}

bool
MioDB::lookupBufferAndRepo(const Slice &key, std::string *value,
                           EntryType *type, uint64_t *seq,
                           bool *corrupt)
{
    const bool use_bloom = options_.bits_per_key > 0;
    // Hash once; every filter probe on this path reuses the pair.
    const auto [h1, h2] = BloomFilter::keyHashes(key);
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        const BufferLevel &bl = state_->levels.level(i);
        const LevelManifest *m = bl.acquireManifest();
        while (true) {
            if (probeLevelManifest(*m, key, h1, h2, value, type, seq,
                                   use_bloom, corrupt)) {
                return true;
            }
            if (*corrupt)
                return false;  // never descend past damage
            // A miss is conclusive only if the manifest did not change
            // underneath the probe: a concurrent merge claim can move
            // a node out of a table after we searched it (and captured
            // filters go stale the same way). Publication happens
            // before any node moves, so rechecking the pointer after
            // the probe catches every such race; a reader that misses
            // for real sees a stable pointer and descends.
            const LevelManifest *now = bl.acquireManifest();
            if (now == m)
                break;
            m = now;
            stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return state_->repo->get(key, value, type, seq,
                             options_.verify_read_checksums, corrupt);
}

bool
MioDB::findNewestRaw(const Slice &key, std::string *value,
                     EntryType *type, uint64_t *seq, bool *corrupt,
                     CacheProbe *probe)
{
    ReadGuard guard(this);
    std::shared_ptr<lsm::MemTable> mem;
    std::vector<std::shared_ptr<lsm::MemTable>> imms;
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        mem = mem_;
        imms.reserve(imms_.size());
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            imms.push_back(it->mem);
    }
    if (mem && mem->get(key, value, type, seq))
        return true;
    for (const auto &imm : imms) {
        if (imm->get(key, value, type, seq))
            return true;
    }
    // Cache probe sits BETWEEN the DRAM write path and the buffer
    // descent: everything newer than the cached copy is either in the
    // tables probed above (miss here is authoritative for them) or
    // was installed by a flush -- whose invalidation walk runs before
    // its immutable leaves the read path, so it either bumped the
    // epoch we capture here or its table was still probed above.
    if (probe != nullptr && read_cache_ != nullptr) {
        if (read_cache_->lookup(key, value, &probe->epoch)) {
            probe->hit = true;
            *type = EntryType::kValue;
            return true;
        }
        probe->fillable = true;
    }
    return lookupBufferAndRepo(key, value, type, seq, corrupt);
}

Status
MioDB::get(const Slice &key, std::string *value)
{
    // Instant recovery: before consulting any source, materialize the
    // WAL frames whose key range covers this key (no-op once drained).
    Status er = ensureRecovered(ReplayKind::kKey, key);
    if (!er.isOk())
        return er;
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    // The bounded retry covers one narrow race: a GC unlink can
    // retire a value-log segment between the index lookup and the
    // dereference. Relocations commit before their segment is
    // unlinked, so the re-run lookup always finds the moved pointer.
    for (int attempt = 0; attempt < 3; attempt++) {
        EntryType type = EntryType::kValue;
        bool corrupt = false;
        CacheProbe probe;
        bool found =
            findNewestRaw(key, value, &type, nullptr, &corrupt, &probe);
        if (corrupt) {
            stats_.corruptions_detected.fetch_add(
                1, std::memory_order_relaxed);
            return Status::corruption(key);
        }
        if (!found || type == EntryType::kDeletion)
            return Status::notFound(key);
        if (type != EntryType::kValuePointer) {
            // Fill only below-DRAM results (probe.fillable means the
            // MemTables missed), never a value the cache answered.
            if (probe.fillable && !probe.hit && read_cache_ != nullptr)
                read_cache_->insert(key, Slice(*value), probe.epoch);
            return Status::ok();
        }

        ValuePointer vp;
        if (state_->vlog == nullptr ||
            !ValuePointer::decode(Slice(*value), &vp)) {
            stats_.corruptions_detected.fetch_add(
                1, std::memory_order_relaxed);
            return Status::corruption(key);
        }
        Status vs = state_->vlog->read(vp, value);
        if (vs.isOk()) {
            // Cache the MATERIALIZED value: a hit skips the whole
            // descent and the pointer dereference.
            if (probe.fillable && read_cache_ != nullptr)
                read_cache_->insert(key, Slice(*value), probe.epoch);
            return vs;
        }
        if (vs.isCorruption()) {
            stats_.corruptions_detected.fetch_add(
                1, std::memory_order_relaxed);
            return vs;
        }
        stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::ioError("value-log dereference retry limit");
}

Status
MioDB::scan(const Slice &start_key, int count,
            std::vector<std::pair<std::string, std::string>> *out)
{
    // Instant recovery: a scan reads every key >= start_key, so all
    // pending frames whose range reaches that far must land first.
    Status er = ensureRecovered(ReplayKind::kFromKey, start_key);
    if (!er.isOk())
        return er;
    // A live scan is a scan against a view pinned right now: pin,
    // iterate, release. The pin is what lets merges/flushes proceed
    // at full speed underneath without ever yanking a table (or a
    // repository file) out from under the cursor.
    Snapshot *snap = captureSnapshot();
    Status s = scanAt(snap, start_key, count, out);
    releaseSnapshot(snap);
    return s;
}

Snapshot *
MioDB::getSnapshot()
{
    // A snapshot promises the full committed state at its bound, and
    // the bound is already past every logged sequence (buildRecoveryIndex
    // published the horizon) -- so every pending frame must materialize
    // before capture. Replay failure degrades to capturing anyway: the
    // snapshot then serves what did materialize, matching the store's
    // own post-crash contents.
    (void)ensureRecovered(ReplayKind::kAll, Slice());
    return captureSnapshot();
}

Snapshot *
MioDB::captureSnapshot()
{
    auto *snap = new MioSnapshot();
    snap->state = state_;
    {
        // Register the bound BEFORE pinning any source: a merge whose
        // keep_seq capture happens after this sees the bound and
        // retains every version the snapshot can reach. Merges that
        // captured earlier are covered by the visible_seq_ cap in
        // oldestSnapshotSeq -- they drop a version only under a
        // shadow that was already committed, hence <= our bound.
        std::lock_guard<std::mutex> sl(snap_mu_);
        snap->bound = visible_seq_.load(std::memory_order_acquire);
        snap_bounds_.insert(snap->bound);
        live_snapshots_.insert(snap);
    }
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        if (mem_)
            snap->mems.push_back(mem_);
        for (auto it = imms_.rbegin(); it != imms_.rend(); ++it)
            snap->mems.push_back(it->mem);
    }
    // Top-down: data only ever flows downward (flush to L0, merges
    // toward the last level, migration into the repository), so an
    // entry that moves mid-capture is seen by a lower pin; the probe
    // chain and user-key dedup collapse any duplicate sighting.
    snap->manifests.reserve(state_->levels.numLevels());
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        snap->manifests.push_back(
            state_->levels.level(i).manifestSnapshot());
    }
    snap->repo_pin = state_->repo->pinVersion();

    stats_.snapshots_live.fetch_add(1, std::memory_order_relaxed);
    stats_.snapshots_pinned_manifests.fetch_add(
        snap->manifests.size(), std::memory_order_relaxed);
    return snap;
}

void
MioDB::releaseSnapshot(Snapshot *snapshot)
{
    if (snapshot == nullptr)
        return;
    auto *snap = static_cast<MioSnapshot *>(snapshot);
    {
        std::lock_guard<std::mutex> sl(snap_mu_);
        auto it = live_snapshots_.find(snap);
        assert(it != live_snapshots_.end() &&
               "releaseSnapshot: not a live snapshot of this store "
               "(double release?)");
        if (it == live_snapshots_.end())
            return;  // double release: leak rather than corrupt
        live_snapshots_.erase(it);
        snap_bounds_.erase(snap_bounds_.find(snap->bound));
    }
    stats_.snapshots_live.fetch_sub(1, std::memory_order_relaxed);
    stats_.snapshots_pinned_manifests.fetch_sub(
        snap->manifests.size(), std::memory_order_relaxed);
    delete snap;
    // The released bound may have been the one gating a value-log
    // segment unlink; let GC re-check its pending retirements.
    bool unlinks_pending = false;
    {
        std::lock_guard<std::mutex> gl(vlog_gc_mu_);
        unlinks_pending = !vlog_pending_unlinks_.empty();
    }
    if (unlinks_pending)
        scheduleVlogGc();
}

uint64_t
MioDB::oldestSnapshotSeq() const
{
    // Capped by the committed watermark even with no snapshot live:
    // a version shadowed only by an uncommitted write must survive,
    // because a snapshot registered after this capture could carry a
    // bound below that shadow (the write may even fail and vanish).
    uint64_t keep = visible_seq_.load(std::memory_order_acquire);
    // During instant recovery the floor sits below every un-replayed
    // sequence: a pending frame may carry an OLDER version of any key,
    // and a merge must not drop the tombstone or newer version that
    // shadows it (the replay inserts with original sequences, so once
    // applied the normal shadowing rules take over). kMaxSequence --
    // i.e. no effect -- once drained.
    keep = std::min(keep,
                    recovery_keep_floor_.load(std::memory_order_acquire));
    std::lock_guard<std::mutex> sl(snap_mu_);
    if (!snap_bounds_.empty())
        keep = std::min(keep, *snap_bounds_.begin());
    return keep;
}

Status
MioDB::scanAt(const Snapshot *snapshot, const Slice &start_key,
              int count,
              std::vector<std::pair<std::string, std::string>> *out)
{
    stats_.scans.fetch_add(1, std::memory_order_relaxed);
    out->clear();
    if (count <= 0)
        return Status::ok();
    if (snapshot == nullptr)
        return scan(start_key, count, out);
    const auto *snap = static_cast<const MioSnapshot *>(snapshot);
    const bool verify = options_.verify_read_checksums;

    // Children ordered newest source first (MergingIterator resolves
    // internal-key ties in child order): MemTables, buffer levels top
    // to bottom -- resident tables newest first, then the in-flight
    // merge pair and the migrating table -- and the repository last.
    // TableProbeIterator keeps each pinned table's cursor correct
    // while zero-copy merges relink its nodes (the merge pair's
    // insertion mark is covered by the newtable's probe chain).
    std::vector<std::unique_ptr<lsm::KVIterator>> children;
    size_t child_count = snap->mems.size() + 1;
    for (const auto &m : snap->manifests) {
        child_count += m->tables.size() + (m->merge ? 2 : 0) +
                       (m->migrating ? 1 : 0);
    }
    children.reserve(child_count);
    for (const auto &mem : snap->mems) {
        children.push_back(std::make_unique<lsm::SkipListIterator>(
            &mem->list(), verify));
    }
    for (const auto &m : snap->manifests) {
        for (const auto &ref : m->tables) {
            children.push_back(
                std::make_unique<TableProbeIterator>(ref.table,
                                                     verify));
        }
        if (m->merge) {
            children.push_back(std::make_unique<TableProbeIterator>(
                m->merge->newt, verify));
            children.push_back(std::make_unique<TableProbeIterator>(
                m->merge->oldt, verify));
        }
        if (m->migrating) {
            children.push_back(std::make_unique<TableProbeIterator>(
                m->migrating, verify));
        }
    }
    children.push_back(
        state_->repo->newSnapshotIterator(snap->repo_pin, verify));

    // A table quarantined after capture may be serving the snapshot
    // damaged bytes (per-entry checksums catch most, but quarantine
    // also covers structural damage): any key its range covers must
    // answer corruption, never fall through to a stale version below.
    auto corrupt_probe = [snap, this](const Slice &user_key) {
        for (const auto &m : snap->manifests) {
            for (const auto &ref : m->tables) {
                if (ref.table->isQuarantined() &&
                    ref.coversKey(user_key)) {
                    return true;
                }
            }
            if (m->merge && m->merge->coversKey(user_key) &&
                (m->merge->newt->isQuarantined() ||
                 m->merge->oldt->isQuarantined())) {
                return true;
            }
            if (m->migrating && m->migrating->isQuarantined() &&
                Slice(m->migrating_min).compare(user_key) <= 0 &&
                user_key.compare(Slice(m->migrating_max)) <= 0) {
                return true;
            }
        }
        return state_->repo->snapshotCorrupt(snap->repo_pin,
                                             user_key);
    };

    lsm::DBIterator iter(std::make_unique<lsm::MergingIterator>(
                             std::move(children)),
                         snap->bound, corrupt_probe);
    for (iter.seek(start_key); iter.valid() &&
                               static_cast<int>(out->size()) < count;
         iter.next()) {
        std::string val = iter.value().toString();
        if (iter.entryType() == EntryType::kValuePointer) {
            // Lazy pointer resolution. The snapshot's bound gates GC
            // segment unlinks (oldestSnapshotSeq), so every pointer
            // this view can surface stays resolvable until release --
            // a failure here is real damage, not a race.
            ValuePointer vp;
            Status vs =
                (state_->vlog != nullptr &&
                 ValuePointer::decode(Slice(val), &vp))
                    ? state_->vlog->read(vp, &val)
                    : Status::corruption(iter.key());
            if (!vs.isOk()) {
                stats_.corruptions_detected.fetch_add(
                    1, std::memory_order_relaxed);
                return vs.isCorruption()
                           ? vs
                           : Status::corruption(iter.key());
            }
        }
        out->emplace_back(iter.key().toString(), std::move(val));
    }
    if (!iter.status().isOk()) {
        stats_.corruptions_detected.fetch_add(
            1, std::memory_order_relaxed);
        return iter.status();
    }
    return Status::ok();
}

Status
MioDB::write(const WriteBatch &batch)
{
    if (batch.empty())
        return Status::ok();
    for (const auto &op : batch.ops()) {
        Status valid = validateEntry(Slice(op.key), Slice(op.value));
        if (!valid.isOk())
            return valid;
        if (op.type == EntryType::kValue)
            stats_.puts.fetch_add(1, std::memory_order_relaxed);
        else
            stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    }

    Writer w;
    w.batch = &batch;
    w.op_count = batch.count();
    w.payload_bytes = batch.byteSize() + batch.count() * 11 + 16;
    return writeImpl(&w);
}

std::string
MioDB::debugString()
{
    std::string out = name() + " state:\n";
    char line[256];
    {
        std::lock_guard<std::mutex> il(imm_mu_);
        snprintf(line, sizeof(line),
                 "  memtable: %llu entries (%zu/%zu bytes), %zu "
                 "immutable\n",
                 static_cast<unsigned long long>(
                     mem_ ? mem_->entryCount() : 0),
                 mem_ ? mem_->memoryUsed() : 0,
                 mem_ ? mem_->capacity() : 0, imms_.size());
        out += line;
    }
    for (int i = 0; i < state_->levels.numLevels(); i++) {
        auto snap = state_->levels.level(i).snapshot();
        uint64_t entries = 0;
        for (const auto &t : snap.tables)
            entries += t->entryCount();
        snprintf(line, sizeof(line),
                 "  L%-2d: %zu tables, %llu entries%s%s\n", i,
                 snap.tables.size(),
                 static_cast<unsigned long long>(entries),
                 snap.merge ? ", merge in flight" : "",
                 snap.migrating ? ", migrating" : "");
        out += line;
    }
    snprintf(line, sizeof(line),
             "  repository: %llu entries\n  %s\n",
             static_cast<unsigned long long>(
                 state_->repo->entryCount()),
             snapshotOf(stats_).toString().c_str());
    out += line;
    return out;
}

} // namespace mio::miodb
