/**
 * @file
 * Zero-copy compaction (paper Sec. 4.3): merge the newer of a level's
 * two oldest PMTables into the older one purely by relinking skip-list
 * pointers -- KV bytes never move, so the merge contributes no write
 * amplification. An atomic insertion mark keeps the node in transit
 * visible to lock-free concurrent readers, and doubles as the
 * persistent state from which an interrupted merge resumes after a
 * crash (paper Sec. 4.7).
 */
#ifndef MIO_MIODB_ZERO_COPY_MERGE_H_
#define MIO_MIODB_ZERO_COPY_MERGE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "kv/store_stats.h"
#include "miodb/pmtable.h"
#include "sim/nvm_device.h"
#include "sstable/internal_key.h"

namespace mio::miodb {

/**
 * Test hook: invoked before each node move with the number of nodes
 * already moved; returning false pauses the merge at that point (a
 * simulated crash). Production passes nullptr.
 */
using MergeThrottle = std::function<bool(uint64_t nodes_moved)>;

/**
 * Reclamation hook: invoked with (type, value) for every version a
 * merge drops (shadowed by a newer version, or a tombstone collapsing
 * at the bottom). MioDB uses it to decay value-log live-bytes
 * accounting when a dropped entry is a kValuePointer. Must be cheap
 * and must not call back into the merging structures. May be null.
 */
using DropNotify = std::function<void(EntryType, const Slice &)>;

/**
 * Run the zero-copy merge of op->newt into op->oldt.
 *
 * On completion op->oldt contains every live entry of both tables
 * (older duplicate versions unlinked, memory retained until lazy-copy
 * reclamation), op->newt is empty, and op->done is true. Pointer
 * updates are metered as 8-byte NVM writes.
 *
 * @param keep_seq oldest pinned snapshot bound: an older version is
 * only unlinked when a newer version with seq <= keep_seq shadows it
 * for every live snapshot. Pass kMaxSequence (the default) when no
 * snapshots are pinned to reclaim everything but the newest.
 *
 * @return true if the merge ran to completion; false if @p throttle
 * paused it (resume with resumeZeroCopyMerge).
 */
bool zeroCopyMerge(MergeOp *op, sim::NvmDevice *device,
                   StatsCounters *stats,
                   const MergeThrottle &throttle = nullptr,
                   uint64_t keep_seq = kMaxSequence,
                   const DropNotify &drop_notify = nullptr);

/**
 * Crash-recovery entry: finish an interrupted merge. Per the paper's
 * protocol, if the insertion mark holds a node that never reached the
 * oldtable it is inserted first, then the remaining newtable entries
 * are merged as usual.
 */
bool resumeZeroCopyMerge(MergeOp *op, sim::NvmDevice *device,
                         StatsCounters *stats,
                         const MergeThrottle &throttle = nullptr,
                         uint64_t keep_seq = kMaxSequence,
                         const DropNotify &drop_notify = nullptr);

/**
 * Ablation baseline: merge by physically copying every live entry of
 * both tables into a freshly allocated PMTable (classic compaction --
 * full write amplification). @return the new table, or nullptr when
 * the NVM capacity budget denies the target arena (the caller falls
 * back to the allocation-free zero-copy merge).
 */
std::shared_ptr<PMTable>
copyingMerge(const std::shared_ptr<PMTable> &newt,
             const std::shared_ptr<PMTable> &oldt,
             sim::NvmDevice *device, StatsCounters *stats,
             uint64_t table_id, int bits_per_key,
             uint64_t keep_seq = kMaxSequence,
             const DropNotify &drop_notify = nullptr);

/**
 * Query a merging pair with the paper's three-step protocol:
 * newtable -> insertion mark -> oldtable.
 * @return true if any version of @p key was found. With @p verify,
 * entry checksums are checked and a mismatch sets @p corrupt instead
 * of returning the damaged value.
 */
bool mergeAwareGet(const MergeOp *op, const Slice &key, std::string *value,
                   EntryType *type, uint64_t *seq, bool verify = false,
                   bool *corrupt = nullptr);

} // namespace mio::miodb

#endif // MIO_MIODB_ZERO_COPY_MERGE_H_
