/**
 * @file
 * NVM-resident value log for key-value separation (WiscKey lineage,
 * adapted to MioDB's all-in-memory buffer; see DESIGN.md Sec. 5i).
 *
 * Values above MioOptions::value_separation_threshold are appended
 * once to a segmented log on the NVM device at write time; the index
 * structures (MemTable, PMTables, SSTables) then carry a fixed-size
 * encoded ValuePointer (EntryType::kValuePointer) instead of the
 * bytes. One-piece flushes and zero-copy merges move pointers by
 * construction, and lazy-copy compaction of the bottom level shrinks
 * by the separated-value fraction -- the write-amplification win the
 * paper's Fig. 11 methodology measures as device traffic per user
 * byte.
 *
 * Each record in a segment is self-describing
 * ([crc][key_len][value_len][key][value]) so recovery can rescan
 * segment tails after a power failure (the crash shadow model rolls
 * back unpersisted bytes, so a torn append is detected by its frame
 * CRC and the tail is truncated). The per-record key makes garbage
 * collection possible without a separate index: GC walks a victim
 * segment's records, probes the store for the newest version of each
 * key, and relocates still-referenced payloads to the head segment.
 *
 * Thread safety: append/read/noteDead may race freely (appends are
 * serialized by the mutex; readers resolve a segment id to an owning
 * shared_ptr under the mutex and then read immutable bytes). Segment
 * regions are freed only when the last reference drops, so a reader
 * holding a segment across a concurrent GC unlink stays safe.
 */
#ifndef MIO_MIODB_VALUE_LOG_H_
#define MIO_MIODB_VALUE_LOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kv/store_stats.h"
#include "sim/nvm_device.h"
#include "util/slice.h"
#include "util/status.h"

namespace mio::mem {
class MemoryGovernor;
}

namespace mio::miodb {

/**
 * Fixed-size handle to a value-log payload, stored in place of the
 * value bytes in every index structure. The checksum covers the
 * payload and is verified on every dereference, extending the
 * per-entry checksum story to separated values (the index node's own
 * checksum covers the encoded pointer, which flushes and merges carry
 * without rewriting).
 */
struct ValuePointer {
    uint64_t segment_id = 0;
    uint64_t offset = 0;    //!< payload offset inside the segment
    uint32_t length = 0;    //!< payload bytes
    uint32_t checksum = 0;  //!< recordChecksum over the payload

    static constexpr size_t kEncodedSize = 24;

    void encodeTo(char *dst) const;
    std::string encode() const;
    /** @return false if @p in is not exactly kEncodedSize bytes. */
    static bool decode(const Slice &in, ValuePointer *out);

    bool
    operator==(const ValuePointer &o) const
    {
        return segment_id == o.segment_id && offset == o.offset &&
               length == o.length && checksum == o.checksum;
    }
    bool operator!=(const ValuePointer &o) const { return !(*this == o); }
};

/**
 * The per-instance (per-shard) segmented value log. Lives in NvmState
 * so it survives close/reopen alongside the PMTables it is referenced
 * from.
 */
class ValueLog
{
  public:
    ValueLog(sim::NvmDevice *nvm, StatsCounters *stats,
             size_t segment_bytes);
    ~ValueLog();

    ValueLog(const ValueLog &) = delete;
    ValueLog &operator=(const ValueLog &) = delete;

    /**
     * Append one value, durably (persisted before return). Fills
     * @p out with the handle to store in the index.
     * @return busy when the NVM capacity budget denies a new segment.
     */
    Status append(const Slice &key, const Slice &value,
                  ValuePointer *out);

    /**
     * Dereference @p ptr, verifying its payload checksum.
     * @return notFound when the segment no longer exists (GC unlinked
     *         it concurrently -- the caller re-runs its index lookup,
     *         which finds the relocated pointer), corruption on a
     *         checksum mismatch, ok otherwise.
     */
    Status read(const ValuePointer &ptr, std::string *value) const;

    /**
     * Account a dropped reference (overwrite/delete version collapse
     * in a merge, or a failed GC relocation). Purely a GC-trigger
     * heuristic: it may undercount after a crash (accounting is
     * rebuilt conservatively), never affects correctness.
     */
    void noteDead(const ValuePointer &ptr);

    /** One record recovered from a segment scan (GC input). */
    struct Record {
        std::string key;
        ValuePointer ptr;
    };

    /**
     * Coldest sealed segment whose live fraction is below
     * @p trigger_ratio (live_bytes / appended payload bytes), or 0.
     * Segments already relocated and queued for unlink
     * (markGcQueued) are skipped -- they have no work left.
     */
    uint64_t pickGcVictim(double trigger_ratio) const;
    /** True when pickGcVictim would return a segment. */
    bool hasGcCandidate(double trigger_ratio) const;

    /**
     * Mark @p segment_id as fully relocated and awaiting its
     * snapshot-gated unlink, removing it from GC candidacy. Cleared
     * only by unlinkSegment or recoverAfterCrash (the caller's
     * pending-unlink list is in-memory and dies with a crash, so
     * recovery must make the segment pickable again).
     */
    void markGcQueued(uint64_t segment_id);

    /**
     * Decode every record of @p segment_id in append order.
     * @return false when the segment does not exist.
     */
    bool collectRecords(uint64_t segment_id,
                        std::vector<Record> *out) const;

    /**
     * Drop @p segment_id from the log. Its region is returned to the
     * device once the last concurrent reader releases its reference.
     * The caller must have established that no snapshot can still
     * reach a pointer into it (the oldestSnapshotSeq gate).
     * @return capacity bytes reclaimed, 0 if the segment was unknown.
     */
    uint64_t unlinkSegment(uint64_t segment_id);

    size_t segmentCount() const;
    /** Live-payload estimate for @p segment_id (tests/debug). */
    uint64_t liveBytes(uint64_t segment_id) const;

    /** Re-point device/stats sinks after an NvmState adoption. */
    void rebind(sim::NvmDevice *nvm, StatsCounters *stats);

    /**
     * Attach (or with nullptr detach) the memory governor. Segment
     * capacity is charged to SubBudget::kVlog on open and released on
     * unlink; adoption moves the whole outstanding charge from the old
     * governor to the new one, so a log surviving close/reopen in
     * NvmState never leaks its reservation. When the governor's kVlog
     * limit is set, appends that would open a segment beyond it fail
     * with Status::busy.
     *
     * Shared ownership is required, not a convenience: a store ctor
     * that crashes mid-recovery (failpoint SimCrash) unwinds without
     * running the dtor's detach, so this reference is what keeps the
     * torn instance's governor -- and the kVlog charge parked on it --
     * alive until the next open's rebind moves the charge over.
     */
    void rebindGovernor(std::shared_ptr<mem::MemoryGovernor> governor);

    /** Sum of all segment capacities (the kVlog accounting truth). */
    uint64_t capacityBytes() const;

    /**
     * Post-power-failure pass: every segment is rescanned from the
     * start, the first record with a bad frame CRC truncates the tail
     * (the crash shadow rolled back an unpersisted append), all
     * segments are sealed, and live-bytes accounting is reset to
     * "everything live" -- conservative, corrected by later GC probes.
     */
    void recoverAfterCrash();

    /**
     * Verify every record's payload checksum (background scrubber
     * hook). @return mismatches found; adds scanned payload bytes to
     * @p bytes_verified when given.
     */
    uint64_t scrub(uint64_t *bytes_verified = nullptr) const;

  private:
    /** Frame header: [u32 crc][u32 key_len][u32 value_len]. */
    static constexpr size_t kFrameHeader = 12;

    struct Segment {
        uint64_t id = 0;
        char *base = nullptr;
        size_t capacity = 0;
        /** Bytes of valid frames (append order, persist-covered). */
        std::atomic<size_t> used{0};
        /**
         * Appends holding a reserved range whose frame bytes are not
         * yet persist-covered. Incremented before the reservation is
         * published (so a scrubber that sees the new tail also sees
         * the writer), decremented with release after the persist;
         * the scrubber skips the segment while non-zero.
         */
        std::atomic<int> inflight{0};
        /** Payload bytes ever appended (GC-ratio denominator). */
        std::atomic<uint64_t> payload_bytes{0};
        /** Payload bytes presumed still referenced. */
        std::atomic<uint64_t> live_bytes{0};
        bool sealed = false;
        /** Relocated, unlink pending behind the snapshot gate. */
        bool gc_queued = false;
        sim::NvmDevice *nvm = nullptr;  //!< owner of base

        ~Segment()
        {
            if (base != nullptr)
                nvm->freeRegion(base);
        }
    };

    /** Locked: open a fresh head segment of >= @p min_bytes. */
    std::shared_ptr<Segment> newSegmentLocked(size_t min_bytes);
    std::shared_ptr<Segment> findSegment(uint64_t id) const;
    /** Scan one segment's frames; truncates at the first bad frame. */
    void rescanSegment(Segment *seg) const;

    sim::NvmDevice *nvm_;
    StatsCounters *stats_;
    std::shared_ptr<mem::MemoryGovernor> governor_;  //!< guarded by mu_
    const size_t segment_bytes_;

    mutable std::mutex mu_;
    std::map<uint64_t, std::shared_ptr<Segment>> segments_;
    std::shared_ptr<Segment> head_;
    uint64_t next_segment_id_ = 1;
};

} // namespace mio::miodb

#endif // MIO_MIODB_VALUE_LOG_H_
