/**
 * @file
 * TableProbeIterator: an internal-key cursor anchored on one pinned
 * PMTable that stays correct while zero-copy merges relink the
 * table's nodes underneath it.
 *
 * A plain skip-list cursor breaks in two ways once its table joins a
 * merge: as the NEWtable, nodes are detached out from under it (and
 * later rewired into the destination chain), so a stale cursor can
 * skip or double-visit entries; as the OLDtable, concurrently linked
 * nodes may land behind the cursor's position and be missed. This
 * iterator therefore remembers only its logical position -- the last
 * (user key, seq) it yielded -- and re-resolves every advance with a
 * successor probe that runs the paper's three-step read protocol
 * (newtable, insertion mark, oldtable) through the table's registered
 * MergeOp chain (PMTable::activeMerge). A table fully absorbed into a
 * merge result keeps its done op as a permanent absorbed-into pointer,
 * so a cursor pinning it chases the entries into the result.
 *
 * When no merge has ever touched the anchor, a double epoch check
 * (PMTable::mergeEpoch) keeps the advance a single next-pointer step,
 * so short scans pay nothing for the machinery.
 */
#ifndef MIO_MIODB_TABLE_PROBE_ITERATOR_H_
#define MIO_MIODB_TABLE_PROBE_ITERATOR_H_

#include <memory>
#include <string>

#include "lsm/iterator.h"
#include "miodb/pmtable.h"
#include "sstable/internal_key.h"

namespace mio::miodb {

class TableProbeIterator : public lsm::KVIterator
{
  public:
    /** @param verify check per-entry checksums on access (entryOk). */
    explicit TableProbeIterator(std::shared_ptr<PMTable> table,
                                bool verify = false)
        : table_(std::move(table)), verify_(verify)
    {}

    bool valid() const override { return node_ != nullptr; }

    void
    seekToFirst() override
    {
        // (empty key, max seq, inclusive) admits every entry.
        position(probeChain(table_.get(), Slice(), kMaxSequence,
                            /*inclusive=*/true));
        refreshCache();
    }

    void
    seek(const Slice &internal_key) override
    {
        ParsedInternalKey parsed;
        if (!parseInternalKey(internal_key, &parsed)) {
            seekToFirst();
            return;
        }
        position(probeChain(table_.get(), parsed.user_key, parsed.seq,
                            /*inclusive=*/true));
        refreshCache();
    }

    void
    next() override
    {
        // Fast path: the last probe saw no merge registered on the
        // anchor; if the registration epoch is still unchanged around
        // a plain pointer step, no node can have moved meanwhile (and
        // the cache stays valid -- no locks taken on this path).
        if (node_ != nullptr && cached_plain_) {
            uint64_t e = table_->mergeEpoch();
            if (e == cached_epoch_) {
                const SkipList::Node *n = node_->next(0);
                if (table_->mergeEpoch() == e) {
                    position(n);
                    return;
                }
            }
        }
        position(probeChain(table_.get(), Slice(pos_key_), pos_seq_,
                            /*inclusive=*/false));
        refreshCache();
    }

    Slice key() const override { return Slice(key_buf_); }
    Slice value() const override { return node_->value(); }
    bool
    entryOk() const override
    {
        return !verify_ || node_ == nullptr || node_->checksumOk();
    }

  private:
    using Node = SkipList::Node;

    /** Does (node) sort at/after target (k, seq) in internal order? */
    static bool
    qualifies(const Node *n, const Slice &k, uint64_t seq,
              bool inclusive)
    {
        int r = n->key().compare(k);
        if (r != 0)
            return r > 0;
        return inclusive ? n->seq <= seq : n->seq < seq;
    }

    /** a strictly before b in internal order (b may be nullptr). */
    static bool
    before(const Node *a, const Node *b)
    {
        if (b == nullptr)
            return true;
        int r = a->key().compare(b->key());
        if (r != 0)
            return r < 0;
        return a->seq > b->seq;
    }

    /** First entry of @p list at/after (k, seq). */
    static const Node *
    listLowerBound(const SkipList &list, const Slice &k, uint64_t seq,
                   bool inclusive)
    {
        SkipList::Iterator it(&list);
        if (k.empty())
            it.seekToFirst();
        else
            it.seek(k);
        while (it.valid() && it.key() == k &&
               (inclusive ? it.seq() > seq : it.seq() >= seq)) {
            it.next();
        }
        return it.node();
    }

    /**
     * Successor probe through @p t's merge chain. Read order within
     * an active merge is the paper's: newtable list, then the
     * insertion mark, then the oldtable -- a node in transit is
     * always visible through at least one of the three. A change of
     * the registration epoch during the probe retries it on the
     * fresh state (a merge retiring or starting mid-probe).
     */
    const Node *
    probeChain(const PMTable *t, const Slice &k, uint64_t seq,
               bool inclusive)
    {
        for (;;) {
            uint64_t e1 = t->mergeEpoch();
            std::shared_ptr<MergeOp> op = t->activeMerge();
            const Node *best;
            if (op != nullptr && op->newt.get() == t) {
                if (op->done.load(std::memory_order_acquire)) {
                    // Fully absorbed: everything lives in the result.
                    best = probeChain(op->oldt.get(), k, seq,
                                      inclusive);
                } else {
                    best = listLowerBound(t->list(), k, seq,
                                          inclusive);
                    const Node *m =
                        op->mark.load(std::memory_order_acquire);
                    if (m != nullptr && qualifies(m, k, seq, inclusive) &&
                        before(m, best)) {
                        best = m;
                    }
                    const Node *o = probeChain(op->oldt.get(), k, seq,
                                               inclusive);
                    if (o != nullptr && before(o, best))
                        best = o;
                }
            } else {
                // No merge, or this table is the merge DESTINATION:
                // its own list is complete for its share (in-transit
                // newtable nodes are the newtable cursor's job).
                best = listLowerBound(t->list(), k, seq, inclusive);
            }
            if (t->mergeEpoch() == e1)
                return best;
        }
    }

    void
    position(const Node *n)
    {
        node_ = n;
        key_buf_.clear();
        if (n != nullptr) {
            appendInternalKey(&key_buf_, n->key(), n->seq,
                              n->entryType());
            pos_key_.assign(n->key().data(), n->key().size());
            pos_seq_ = n->seq;
        }
    }

    /** Re-arm the lock-free fast path: a plain step is legal while no
     *  merge is registered and the epoch stays put. */
    void
    refreshCache()
    {
        uint64_t ea = table_->mergeEpoch();
        cached_plain_ = (table_->activeMerge() == nullptr) &&
                        (table_->mergeEpoch() == ea);
        cached_epoch_ = ea;
    }

    std::shared_ptr<PMTable> table_;
    bool verify_;
    const Node *node_ = nullptr;
    std::string key_buf_;
    std::string pos_key_;
    uint64_t pos_seq_ = 0;
    bool cached_plain_ = false;
    uint64_t cached_epoch_ = 0;
};

} // namespace mio::miodb

#endif // MIO_MIODB_TABLE_PROBE_ITERATOR_H_
