/**
 * @file
 * WAL record encoding shared by the commit path (miodb.cpp) and the
 * instant-recovery index scan (recovery_index.cpp).
 *
 * Three record kinds, distinguished by the leading tag byte:
 *
 *   kWalTagSingle  [tag][fixed64 seq][type][lp key][lp value]
 *   kWalTagBatch   [tag][fixed64 first_seq][varint32 count]
 *                  ([type][lp key][lp value])*
 *   kWalTagDigest  [tag][lp min_key][lp max_key][varint32 op_count]
 *                  [inner single/batch record]
 *
 * The digest wrapper is what makes open() O(segment-scan) under
 * instant recovery: the frame's key range and op count sit in a short
 * prefix, so the RecoveryIndex learns which frames cover which keys
 * without materializing any value bytes. New stores always write the
 * wrapper; replay still accepts bare single/batch records, so logs
 * written before this format version recover unchanged (they just
 * index as "covers every key").
 */
#ifndef MIO_MIODB_WAL_FORMAT_H_
#define MIO_MIODB_WAL_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace mio::miodb {

inline constexpr char kWalTagSingle = 1;
inline constexpr char kWalTagBatch = 2;
inline constexpr char kWalTagDigest = 3;

/**
 * The digest header of one WAL record, plus the inner (single/batch)
 * record it wraps. For a bare pre-digest record, unbounded is set and
 * min/max are empty: the frame must be assumed to cover every key.
 * All slices alias the parsed record's storage.
 */
struct WalDigest {
    Slice min_key;
    Slice max_key;
    uint32_t op_count = 0;
    uint64_t first_seq = 0;
    bool unbounded = false;  //!< legacy frame without a digest header
    Slice inner;             //!< the wrapped single/batch record
    size_t header_bytes = 0; //!< bytes the digest parse consumed
};

/**
 * Append a digest record to @p dst: the header computed over
 * [min_key, max_key] x op_count followed by @p inner verbatim.
 */
inline void
appendWalDigest(std::string *dst, const Slice &min_key,
                const Slice &max_key, uint32_t op_count,
                const Slice &inner)
{
    dst->reserve(dst->size() + min_key.size() + max_key.size() +
                 inner.size() + 12);
    dst->push_back(kWalTagDigest);
    putLengthPrefixedSlice(dst, min_key);
    putLengthPrefixedSlice(dst, max_key);
    putVarint32(dst, op_count);
    dst->append(inner.data(), inner.size());
}

/**
 * Parse the digest view of @p record without touching any value bytes
 * beyond the inner record's fixed seq prefix. Accepts all three tags;
 * bare single records report op_count = 1 and a tight [key, key]
 * range (the key is right there in the prefix), bare batch records
 * report their count but an unbounded range (their keys are scattered
 * through the payload, which an index scan must not walk).
 *
 * @return false on a malformed record (truncated header / unknown
 * tag); such a frame is unreplayable and counts as corrupt.
 */
inline bool
parseWalDigest(const Slice &record, WalDigest *out)
{
    Slice input = record;
    if (input.size() < 10)
        return false;
    const char tag = input[0];
    if (tag == kWalTagDigest) {
        input.removePrefix(1);
        if (!getLengthPrefixedSlice(&input, &out->min_key) ||
            !getLengthPrefixedSlice(&input, &out->max_key) ||
            !getVarint32(&input, &out->op_count)) {
            return false;
        }
        out->unbounded = false;
        out->inner = input;
        out->header_bytes = record.size() - input.size();
        if (input.size() < 9)
            return false;
        out->first_seq = decodeFixed64(input.data() + 1);
        const char inner_tag = input[0];
        return inner_tag == kWalTagSingle || inner_tag == kWalTagBatch;
    }
    out->inner = record;
    out->header_bytes = 0;
    out->first_seq = decodeFixed64(input.data() + 1);
    if (tag == kWalTagSingle) {
        Slice rest = input;
        rest.removePrefix(10);  // tag + seq + type
        Slice key;
        if (!getLengthPrefixedSlice(&rest, &key))
            return false;
        out->min_key = key;
        out->max_key = key;
        out->op_count = 1;
        out->unbounded = false;
        return true;
    }
    if (tag == kWalTagBatch) {
        Slice rest = input;
        rest.removePrefix(9);  // tag + seq
        if (!getVarint32(&rest, &out->op_count))
            return false;
        out->min_key = Slice();
        out->max_key = Slice();
        out->unbounded = true;
        return true;
    }
    return false;
}

} // namespace mio::miodb

#endif // MIO_MIODB_WAL_FORMAT_H_
