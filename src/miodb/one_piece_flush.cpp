#include "miodb/one_piece_flush.h"

#include <cassert>

#include "sim/failpoint.h"
#include "util/clock.h"

namespace mio::miodb {

BloomFilter
makePmtableBloom(size_t memtable_capacity, int bits_per_key)
{
    if (bits_per_key <= 0)
        return BloomFilter(64, 1);
    // Expected keys per MemTable assuming ~64-byte entries as a floor
    // (skip-list node header + small KV); a fixed geometry per store
    // keeps every PMTable filter OR-mergeable.
    uint64_t expected = memtable_capacity / 64;
    if (expected == 0)
        expected = 1;
    return BloomFilter::makeForCapacity(expected, bits_per_key);
}

std::shared_ptr<PMTable>
onePieceFlush(lsm::MemTable *mem, sim::NvmDevice *device,
              StatsCounters *stats, int bits_per_key, uint64_t table_id)
{
    ScopedTimer flush_timer(&stats->flush_ns);

    Arena &src = mem->arena();
    const char *old_base = src.base();
    const size_t used = src.used();

    // The PMTable image is filled by one explicit bulk write, so the
    // arena itself must not double-charge allocations.
    auto dst = std::make_shared<Arena>(src.capacity(), device,
                                       /*charge_allocations=*/false);
    if (!dst->valid())
        return nullptr;  // NVM budget exhausted; flush retries later
    MIO_FAILPOINT("flush.before_copy");
    // kImage: a raw structure image whose link words must stay intact
    // (payload integrity is covered by per-entry checksums instead).
    device->write(dst->base(), old_base, used, sim::WriteKind::kImage);
    device->persist(dst->base(), used);
    MIO_FAILPOINT("flush.after_copy");
    dst->setUsed(used);
    stats->flushed_bytes.fetch_add(used, std::memory_order_relaxed);
    stats->storage_bytes_written.fetch_add(used,
                                           std::memory_order_relaxed);

    // The head node is the arena's first allocation (offset 0).
    auto *head = reinterpret_cast<SkipList::Node *>(dst->base());
    ptrdiff_t delta = dst->base() - old_base;

    // Pointer swizzling: every next pointer moves by the same delta.
    // This runs on the flush thread (background w.r.t. the writer).
    MIO_FAILPOINT("flush.before_swizzle");
    size_t fixed = SkipList::relocate(head, delta, old_base, used);
    device->chargeWrite(fixed * sizeof(void *));
    device->persist(dst->base(), used);
    MIO_FAILPOINT("flush.after_swizzle");
    stats->storage_bytes_written.fetch_add(fixed * sizeof(void *),
                                           std::memory_order_relaxed);

    // Build the mergeable bloom filter over the relocated image.
    BloomFilter bloom = makePmtableBloom(src.capacity(), bits_per_key);
    SkipList relocated(head, mem->list().entryCount());
    if (bits_per_key > 0) {
        for (SkipList::Node *n = relocated.first(); n != nullptr;
             n = n->nextRelaxed(0)) {
            bloom.add(n->key());
        }
    }

    return std::make_shared<PMTable>(std::move(dst), head,
                                     mem->list().entryCount(),
                                     std::move(bloom), table_id,
                                     mem->minKey(), mem->maxKey());
}

std::shared_ptr<PMTable>
nodeByNodeFlush(lsm::MemTable *mem, sim::NvmDevice *device,
                StatsCounters *stats, int bits_per_key, uint64_t table_id)
{
    ScopedTimer flush_timer(&stats->flush_ns);
    ScopedTimer ser_timer(&stats->serialization_ns);

    // Re-inserting draws fresh random node heights, which need not
    // match the source's; leave headroom so the copy cannot overflow.
    size_t capacity = mem->arena().capacity();
    capacity += capacity / 3 + 4096;
    auto dst = std::make_shared<Arena>(capacity, device,
                                       /*charge_allocations=*/true);
    if (!dst->valid())
        return nullptr;  // NVM budget exhausted; flush retries later
    auto list = std::make_unique<SkipList>(dst.get(), table_id * 31 + 7);

    BloomFilter bloom = makePmtableBloom(mem->arena().capacity(),
                                         bits_per_key);
    SkipList::Iterator it(&mem->list());
    uint64_t bytes = 0;
    for (it.seekToFirst(); it.valid(); it.next()) {
        bool ok = list->insert(it.key(), it.seq(), it.entryType(),
                               it.value());
        assert(ok && "NVM arena sized to the MemTable cannot overflow");
        (void)ok;
        if (bits_per_key > 0)
            bloom.add(it.key());
        bytes += it.key().size() + it.value().size();
    }
    stats->flushed_bytes.fetch_add(bytes, std::memory_order_relaxed);
    stats->storage_bytes_written.fetch_add(dst->used(),
                                           std::memory_order_relaxed);

    SkipList::Node *head = list->head();
    return std::make_shared<PMTable>(std::move(dst), head,
                                     mem->list().entryCount(),
                                     std::move(bloom), table_id,
                                     mem->minKey(), mem->maxKey());
}

} // namespace mio::miodb
