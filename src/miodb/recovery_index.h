/**
 * @file
 * RecoveryIndex: the per-segment frame directory instant recovery
 * serves from while the WAL replays (see DESIGN.md Sec. 5j).
 *
 * Built by one cheap scan at open(): each surviving WAL frame's
 * digest header (min/max key, op count, first sequence) is decoded in
 * place -- no value bytes are materialized -- and recorded with the
 * frame's stable position inside its segment. Afterwards the store
 * can answer, for any key or key range, exactly which frames must be
 * applied before a read there is correct, and the background replay
 * job walks the same directory oldest-first until nothing is pending.
 *
 * Thread model: the index has no internal locking. The owning MioDB
 * serializes every access under its recovery mutex; the only
 * concurrency-visible signal (the pending-frame count) is mirrored
 * into an atomic owned by the store.
 */
#ifndef MIO_MIODB_RECOVERY_INDEX_H_
#define MIO_MIODB_RECOVERY_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace mio::sim {
class NvmDevice;
}

namespace mio::miodb {

/** What a replay writer asks the commit leader to apply. */
enum class ReplayKind : uint8_t {
    kNone = 0, //!< not a replay writer
    kBatch,    //!< background: next batch of frames, oldest first
    kKey,      //!< on-demand get: frames whose range covers one key
    kFromKey,  //!< on-demand scan: frames with max_key >= start
    kAll,      //!< on-demand snapshot: every pending frame
};

class RecoveryIndex
{
  public:
    /** One WAL frame awaiting replay. Key slices alias the segment's
     *  chunk memory, which is append-only and pinned by the owning
     *  Segment's handle -- stable for the index's whole life. */
    struct Frame {
        wal::LogReader::Position pos;
        Slice min_key;
        Slice max_key;
        uint64_t first_seq = 0;
        uint32_t op_count = 0;
        bool unbounded = false; //!< pre-digest frame: covers every key
        bool replayed = false;
    };

    /** One surviving WAL segment and its frame directory. */
    struct Segment {
        std::string name;
        std::shared_ptr<wal::LogSegment> segment;
        std::vector<Frame> frames;
        size_t pending = 0;    //!< frames not yet replayed
        bool relog_ok = true;  //!< every replayed op re-logged durably
        bool removed = false;  //!< handed out by takeRemovableSegments
    };

    /** Stable handle to one indexed frame. */
    struct FrameRef {
        size_t seg = 0;
        size_t frame = 0;
    };

    /**
     * Scan every registry segment older than @p own_floor (the name
     * of the store's first own segment) and index its frames. Charges
     * @p nvm only for the bytes the digest decode actually touches --
     * this is what keeps open() proportional to the directory, not
     * the log. A torn or malformed frame ends that segment's
     * directory (the tail after a tear is unreplayable, as in the
     * full replay) and bumps @p corrupt_frames.
     */
    void build(wal::WalRegistry *registry, const std::string &own_floor,
               sim::NvmDevice *nvm, uint64_t *corrupt_frames);

    /** Pending (un-replayed) frames across every segment. */
    size_t pendingFrames() const { return pending_frames_; }
    /** Segments still holding at least one pending frame. */
    size_t pendingSegments() const;
    /** One past the highest sequence any indexed frame commits. */
    uint64_t maxSeq() const { return max_seq_; }
    /** Smallest first_seq over every indexed frame (kMaxSequence when
     *  the directory is empty). */
    uint64_t minFirstSeq() const { return min_first_seq_; }

    /** Would @p kind / @p key match any pending frame? (Fast-path
     *  filter so reads of replayed ranges skip the writer queue.) */
    bool anyPending(ReplayKind kind, const Slice &key) const;

    /**
     * Collect up to @p max_frames pending frames matching @p kind /
     * @p key, oldest segment first and in-segment order -- replay
     * order is append order, so re-applied sequences land under their
     * original shadows.
     */
    void collect(ReplayKind kind, const Slice &key, size_t max_frames,
                 std::vector<FrameRef> *out) const;

    Frame &frame(const FrameRef &ref)
    {
        return segments_[ref.seg].frames[ref.frame];
    }
    Segment &segment(const FrameRef &ref)
    {
        return segments_[ref.seg];
    }

    /** Mark @p ref replayed; @p relog_ok false taints the segment so
     *  it survives in the registry (its frames stay the only durable
     *  copy of what a denied re-log failed to duplicate). */
    void markReplayed(const FrameRef &ref, bool relog_ok);

    /**
     * Names of segments whose every frame has been replayed with all
     * re-logs durable -- safe to remove from the registry. Each name
     * is returned once.
     */
    std::vector<std::string> takeRemovableSegments();

  private:
    static bool matches(const Frame &f, ReplayKind kind,
                        const Slice &key);

    std::vector<Segment> segments_; //!< sorted oldest-first by name
    size_t pending_frames_ = 0;
    uint64_t max_seq_ = 0;
    uint64_t min_first_seq_ = 0;
};

} // namespace mio::miodb

#endif // MIO_MIODB_RECOVERY_INDEX_H_
