#include "miodb/pmtable.h"

namespace mio::miodb {

PMTable::PMTable(std::shared_ptr<Arena> arena, SkipList::Node *head,
                 uint64_t entry_count, BloomFilter bloom,
                 uint64_t table_id, std::string min_key,
                 std::string max_key)
    : list_(head, entry_count),
      bloom_(std::make_shared<const BloomFilter>(std::move(bloom))),
      table_id_(table_id), min_key_(std::move(min_key)),
      max_key_(std::move(max_key))
{
    arenas_.push_back(std::move(arena));
}

std::string
PMTable::minKey() const
{
    std::lock_guard<std::mutex> lock(meta_mu_);
    return min_key_;
}

std::string
PMTable::maxKey() const
{
    std::lock_guard<std::mutex> lock(meta_mu_);
    return max_key_;
}

bool
PMTable::coversKey(const Slice &key) const
{
    std::lock_guard<std::mutex> lock(meta_mu_);
    return Slice(min_key_).compare(key) <= 0 &&
           key.compare(Slice(max_key_)) <= 0;
}

bool
PMTable::bloomMayContain(const Slice &key) const
{
    std::shared_ptr<const BloomFilter> filter;
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        filter = bloom_;
    }
    return filter->mayContain(key);
}

size_t
PMTable::arenaBytes() const
{
    std::lock_guard<std::mutex> lock(meta_mu_);
    size_t total = 0;
    for (const auto &arena : arenas_)
        total += arena->capacity();
    return total;
}

void
PMTable::absorb(PMTable &other)
{
    // Consistent order: this (the merge target) first, then the
    // absorbed table. absorb() is only ever called by the single
    // compaction thread owning both tables.
    std::scoped_lock lock(meta_mu_, other.meta_mu_);
    for (const auto &arena : other.arenas_)
        arenas_.push_back(arena);  // co-own; never steal from readers
    // Copy-on-write: references captured by level manifests keep
    // probing the pre-merge filter, which is still sound for the keys
    // that table held at capture time.
    auto merged = std::make_shared<BloomFilter>(*bloom_);
    merged->merge(*other.bloom_);
    bloom_ = std::move(merged);
    if (Slice(other.min_key_).compare(Slice(min_key_)) < 0)
        min_key_ = other.min_key_;
    if (Slice(other.max_key_).compare(Slice(max_key_)) > 0)
        max_key_ = other.max_key_;
    merge_depth_ =
        (merge_depth_ > other.merge_depth_ ? merge_depth_
                                           : other.merge_depth_) + 1;
}

} // namespace mio::miodb
