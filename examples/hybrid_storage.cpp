/**
 * @file
 * Hybrid DRAM-NVM-SSD deployment (paper Sec. 5.4): MioDB with its
 * data repository as a leveled SSTable LSM on the simulated SSD. The
 * elastic NVM buffer absorbs a write burst; the example reports where
 * the bytes went and how the burst affected NVM footprint.
 *
 *   ./examples/hybrid_storage [--keys=30000] [--value_size=1024]
 */
#include <cstdio>

#include "miodb/miodb.h"
#include "util/clock.h"
#include "util/flags.h"
#include "util/random.h"

using namespace mio;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    uint64_t keys = flags.getInt("keys", 30000);
    size_t value_size = flags.getSize("value_size", 1024);

    sim::NvmDevice nvm(sim::MemoryPerfModel::optaneDefault());
    sim::SsdDevice ssd(sim::SsdPerfModel::nvmeDefault());

    miodb::MioOptions options;
    options.memtable_size = 256 << 10;
    // A shallower buffer at example scale so the cascade actually
    // reaches the SSD repository within one burst.
    options.elastic_levels = 4;
    options.use_ssd_repository = true;
    options.ssd_lsm.sstable_target_size = 256 << 10;
    options.ssd_lsm.level1_max_bytes = 2u << 20;
    miodb::MioDB db(options, &nvm, &ssd);

    printf("store: %s\n", db.name().c_str());

    // Burst-write the dataset.
    Random rng(99);
    std::string payload;
    rng.fillString(&payload, value_size);
    Stopwatch burst;
    for (uint64_t i = 0; i < keys; i++)
        db.put(makeKey(i), payload);
    double write_s = burst.elapsedSeconds();
    uint64_t nvm_peak_during = nvm.meters().peak_allocated;

    printf("burst: %llu puts in %.2fs (%.1f KIOPS); NVM peak during "
           "burst: %.1f MB\n",
           static_cast<unsigned long long>(keys), write_s,
           keys / write_s / 1000.0, nvm_peak_during / 1048576.0);

    // Drain: the buffer migrates into SSTables on the SSD.
    db.waitIdle();
    printf("after drain: NVM in use %.1f MB, SSD stores %.1f MB in "
           "%zu blobs\n",
           nvm.meters().bytes_allocated / 1048576.0,
           ssd.meters().bytes_stored / 1048576.0,
           ssd.listBlobs().size());

    // Reads are served from the remaining buffer tables or the SSD.
    std::string v;
    Stopwatch reads;
    int hits = 0;
    const int probes = 2000;
    Random prng(7);
    for (int i = 0; i < probes; i++) {
        if (db.get(makeKey(prng.uniform(keys)), &v).isOk())
            hits++;
    }
    printf("reads: %d/%d hits, avg %.1f us\n", hits, probes,
           reads.elapsedMicros() / probes);

    StatsSnapshot stats = snapshotOf(db.stats());
    printf("WA (storage+wal / user): %.2fx; stalls: %.1f ms\n",
           static_cast<double>(stats.storage_bytes_written +
                               stats.wal_bytes_written) /
               stats.user_bytes_written,
           (stats.interval_stall_ns + stats.cumulative_stall_ns) /
               1e6);
    return 0;
}
