/**
 * @file
 * db_bench-style command-line driver: pick a store, a benchmark list,
 * and sizes, like the LevelDB tool the paper's Sec. 5.1 uses.
 *
 *   ./examples/db_bench_cli --store=miodb \
 *       --benchmarks=fillrandom,readrandom,readseq,ycsb-a \
 *       --dataset_bytes=32m --value_size=1024 --memtable_size=512k
 *
 * Stores: miodb | matrixkv | novelsm | novelsm-hier | novelsm-nosst
 * Benchmarks: fillseq fillrandom readrandom readseq overwrite
 *             ycsb-a..ycsb-f stats
 */
#include <cstdio>
#include <sstream>

#include "benchutil/db_bench.h"
#include "benchutil/reporter.h"
#include "miodb/miodb.h"
#include "ycsb/runner.h"

using namespace mio;
using namespace mio::bench;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

void
printPhase(const BenchConfig &config, const PhaseResult &r)
{
    printf("%-12s : %9.1f KIOPS  %8.1f MB/s  avg %7.1f us  "
           "p99 %8.1f us  (%llu ops in %.2fs)\n",
           r.phase.c_str(), r.kiops(), r.mbps(config.value_size),
           r.latency_us.average(), r.latency_us.percentile(99),
           static_cast<unsigned long long>(r.operations), r.seconds);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    BenchConfig config = BenchConfig::fromFlags(flags);
    std::string benchmarks = flags.getString(
        "benchmarks", "fillrandom,readrandom,readseq,stats");

    printf("db_bench_cli: store=%s dataset=%llu MB value=%zu B "
           "memtable=%zu KB%s\n\n",
           config.store.c_str(),
           static_cast<unsigned long long>(config.dataset_bytes >> 20),
           config.value_size, config.memtable_size >> 10,
           config.ssd_mode ? " [SSD mode]" : "");

    StoreBundle bundle = makeStore(config);
    DbBench bench(&bundle, config);
    bool loaded = false;

    for (const std::string &name : splitList(benchmarks)) {
        if (name == "fillseq") {
            printPhase(config, bench.fillSeq());
            loaded = true;
        } else if (name == "fillrandom" || name == "overwrite") {
            printPhase(config, bench.fillRandom());
            loaded = true;
        } else if (name == "readrandom" || name == "readseq") {
            if (!loaded) {
                bench.fillRandom();
                bench.waitIdle();
                loaded = true;
            }
            printPhase(config, name == "readrandom"
                                   ? bench.readRandom(config.num_reads)
                                   : bench.readSeq(config.num_reads));
        } else if (name.rfind("ycsb-", 0) == 0 && name.size() == 6) {
            ycsb::Runner runner(bundle.store.get(), config.value_size,
                                config.seed);
            uint64_t records = config.numKeys();
            if (!loaded) {
                auto load = runner.load(records);
                printf("%-12s : %9.1f KIOPS\n", "ycsb-load",
                       load.kiops());
                loaded = true;
            }
            auto spec = ycsb::WorkloadSpec::byName(name[5]);
            auto r = runner.run(spec, records, config.num_reads);
            printf("%-12s : %9.1f KIOPS  avg %7.1f us  p99 %8.1f us  "
                   "p99.9 %8.1f us\n",
                   name.c_str(), r.kiops(), r.latency_us.average(),
                   r.latency_us.percentile(99),
                   r.latency_us.percentile(99.9));
        } else if (name == "stats") {
            bundle.store->waitIdle();
            auto s = snapshotOf(bundle.store->stats());
            printf("\n%s\n", s.toString().c_str());
            printf("device writes: NVM %.1f MB (peak alloc %.1f MB)"
                   "%s\n",
                   bundle.nvm->meters().bytes_written / 1048576.0,
                   bundle.nvm->meters().peak_allocated / 1048576.0,
                   config.ssd_mode ? "" : ", SSD unused");
            if (auto *mio_db = dynamic_cast<miodb::MioDB *>(
                    bundle.store.get())) {
                printf("\n%s\n", mio_db->debugString().c_str());
            }
        } else {
            printf("unknown benchmark: %s (skipped)\n", name.c_str());
        }
    }
    return 0;
}
