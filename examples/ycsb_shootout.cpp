/**
 * @file
 * YCSB shootout: run the same YCSB mix against MioDB, MatrixKV, and
 * NoveLSM side by side and print a comparison -- a compact version of
 * the paper's Fig. 7 experiment usable as an API example.
 *
 *   ./examples/ycsb_shootout [--records=20000] [--ops=10000]
 *                            [--workload=A] [--value_size=256]
 */
#include <cstdio>

#include "benchutil/store_factory.h"
#include "ycsb/runner.h"

using namespace mio;
using namespace mio::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    uint64_t records = flags.getInt("records", 20000);
    uint64_t ops = flags.getInt("ops", 10000);
    std::string workload = flags.getString("workload", "A");
    size_t value_size = flags.getSize("value_size", 256);

    BenchConfig config;
    config.memtable_size = 256 << 10;
    config.value_size = value_size;
    config.dataset_bytes = records * (value_size + 16);
    config.nvm_buffer_bytes = 2u << 20;

    printf("YCSB workload %s: %llu records, %llu ops, %zu B values\n\n",
           workload.c_str(), static_cast<unsigned long long>(records),
           static_cast<unsigned long long>(ops), value_size);
    printf("%-16s %10s %10s %10s %10s %10s\n", "store", "load KIOPS",
           "run KIOPS", "avg us", "p99 us", "p99.9 us");

    for (const char *store : {"miodb", "matrixkv", "novelsm"}) {
        config.store = store;
        StoreBundle bundle = makeStore(config);
        ycsb::Runner runner(bundle.store.get(), value_size);
        auto load = runner.load(records);
        auto spec = ycsb::WorkloadSpec::byName(workload[0]);
        auto run = runner.run(spec, records, ops);
        printf("%-16s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
               bundle.store->name().c_str(), load.kiops(),
               run.kiops(), run.latency_us.average(),
               run.latency_us.percentile(99),
               run.latency_us.percentile(99.9));
    }
    printf("\nTry --workload=E for scans or --value_size=4096 for the "
           "paper's default.\n");
    return 0;
}
