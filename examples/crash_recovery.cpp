/**
 * @file
 * Crash recovery walkthrough (paper Sec. 4.7): write data, simulate a
 * power failure, reopen from the surviving NVM image + WAL, and
 * verify nothing durable was lost -- including a zero-copy merge that
 * was interrupted mid-flight and resumes from its insertion mark.
 *
 *   ./examples/crash_recovery
 */
#include <cstdio>

#include "miodb/miodb.h"
#include "miodb/one_piece_flush.h"
#include "miodb/zero_copy_merge.h"
#include "util/random.h"

using namespace mio;
using namespace mio::miodb;

int
main()
{
    sim::NvmDevice nvm;
    wal::WalRegistry wal_registry;  // models the persistent NVM log
    std::shared_ptr<NvmState> nvm_image;

    MioOptions options;
    options.memtable_size = 64 << 10;
    options.elastic_levels = 3;

    // ---- Phase 1: write, then crash without a clean shutdown. ----
    {
        MioDB db(options, &nvm, nullptr, &wal_registry);
        nvm_image = db.nvmState();  // "the NVM DIMM" surviving power loss
        for (int i = 0; i < 5000; i++)
            db.put(makeKey(i), "durable-" + std::to_string(i));
        printf("phase 1: wrote 5000 keys; WAL segments alive: %zu, "
               "buffer tables: %zu\n",
               wal_registry.list().size(), db.levels().totalTables());
        db.simulateCrash();
        printf("phase 1: simulated power failure (no clean flush)\n");
    }

    // ---- Phase 2: reopen. WAL replays the DRAM-buffered tail; the
    //      PMTables and repository are adopted from the NVM image. ----
    {
        MioDB db(options, &nvm, nullptr, &wal_registry, nvm_image);
        std::string v;
        int recovered = 0;
        for (int i = 0; i < 5000; i++) {
            if (db.get(makeKey(i), &v).isOk() &&
                v == "durable-" + std::to_string(i)) {
                recovered++;
            }
        }
        printf("phase 2: recovered %d / 5000 keys\n", recovered);
        db.simulateCrash();  // keep the image for phase 3
    }

    // ---- Phase 3: an interrupted zero-copy compaction resumes from
    //      the insertion mark (the Sec. 4.7 protocol), standalone. ----
    {
        StatsCounters stats;
        auto make_table = [&](int lo, int hi, uint64_t seq,
                              uint64_t id) {
            lsm::MemTable mem(1 << 16, id);
            for (int i = lo; i < hi; i++) {
                mem.add(makeKey(i), seq + i, EntryType::kValue,
                        "merge-" + std::to_string(i));
            }
            return onePieceFlush(&mem, &nvm, &stats, 16, id);
        };
        auto op = std::make_shared<MergeOp>();
        op->oldt = make_table(0, 50, 1, 1);
        op->newt = make_table(25, 75, 1000, 2);

        // Crash after 10 nodes: the 11th sits only in the mark.
        bool done = zeroCopyMerge(op.get(), &nvm, &stats,
                                  [](uint64_t moved) {
                                      return moved < 10;
                                  });
        printf("phase 3: merge interrupted (completed=%s), mark=%s\n",
               done ? "yes" : "no",
               op->mark.load() ? "set" : "clear");

        resumeZeroCopyMerge(op.get(), &nvm, &stats);
        std::string v;
        EntryType t;
        int present = 0;
        for (int i = 0; i < 75; i++) {
            if (op->oldt->list().get(makeKey(i), &v, &t))
                present++;
        }
        printf("phase 3: after resume, merged table holds %d / 75 "
               "keys (done=%s)\n",
               present, op->done.load() ? "yes" : "no");
    }
    return 0;
}
