/**
 * @file
 * Quickstart: open a MioDB instance on an emulated NVM module, write,
 * read, update, delete, and scan through the public KVStore API, then
 * peek at the store's internal statistics.
 *
 *   ./examples/quickstart
 */
#include <cstdio>

#include "miodb/miodb.h"
#include "util/random.h"

using namespace mio;

int
main()
{
    // 1. Create the emulated NVM module. The Optane-like performance
    //    model charges realistic write/read costs; pass
    //    MemoryPerfModel::none() for functional experimentation.
    sim::NvmDevice nvm(sim::MemoryPerfModel::optaneDefault());

    // 2. Configure and open the store. Defaults follow the paper
    //    (8 elastic levels, 16 bloom bits/key); the MemTable is scaled
    //    down here so the example exercises flushing and compaction.
    miodb::MioOptions options;
    options.memtable_size = 256 << 10;
    miodb::MioDB db(options, &nvm);

    // 3. Basic operations.
    Status s = db.put("greeting", "hello, persistent world");
    printf("put: %s\n", s.toString().c_str());

    std::string value;
    s = db.get("greeting", &value);
    printf("get: %s -> \"%s\"\n", s.toString().c_str(), value.c_str());

    db.put("greeting", "hello again");
    db.get("greeting", &value);
    printf("after update: \"%s\"\n", value.c_str());

    db.remove("greeting");
    s = db.get("greeting", &value);
    printf("after delete: %s\n", s.toString().c_str());

    // 4. Write enough data to push flushes and zero-copy compactions.
    printf("\nloading 20000 keys...\n");
    for (int i = 0; i < 20000; i++) {
        db.put(makeKey(i), "value-" + std::to_string(i));
    }
    db.waitIdle();

    // 5. Range query.
    std::vector<std::pair<std::string, std::string>> window;
    db.scan(makeKey(9995), 5, &window);
    printf("scan from %s:\n", makeKey(9995).c_str());
    for (const auto &[k, v] : window)
        printf("  %s = %s\n", k.c_str(), v.c_str());

    // 6. Introspection: what did the engine do?
    StatsSnapshot stats = snapshotOf(db.stats());
    printf("\nengine activity: %s\n", stats.toString().c_str());
    printf("repository entries: %llu, buffer tables: %zu, "
           "NVM in use: %.1f MB (peak %.1f MB)\n",
           static_cast<unsigned long long>(
               db.repository().entryCount()),
           db.levels().totalTables(),
           nvm.meters().bytes_allocated / 1048576.0,
           nvm.meters().peak_allocated / 1048576.0);
    return 0;
}
